"""Unit tests for the F-logic Lite knowledge base."""

import pytest

from repro.core.atoms import Atom, data, funct, member
from repro.core.errors import ChaseFailure, EncodingError, ReproError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.flogic.kb import Answer, KnowledgeBase


class TestLoading:
    def test_add_pfl_atom(self):
        kb = KnowledgeBase().add(member(Constant("j"), Constant("c")))
        assert len(kb) == 1

    def test_add_source_text(self):
        kb = KnowledgeBase().add("john:student.")
        assert len(kb) == 1

    def test_load_multiple(self):
        kb = KnowledgeBase().load("a::b. b::c. x:a.")
        assert len(kb) == 3

    def test_rules_rejected_in_load(self):
        with pytest.raises(EncodingError):
            KnowledgeBase().load("q(X) :- X:c.")

    def test_unground_atom_rejected(self):
        with pytest.raises(EncodingError):
            KnowledgeBase().add(member(Variable("X"), Constant("c")))

    def test_base_facts_exposed(self):
        kb = KnowledgeBase().load("john:student.")
        assert kb.base_facts == (member(Constant("john"), Constant("student")),)


class TestReasoning:
    def test_subclass_transitivity(self, university_kb):
        assert university_kb.holds("?- freshman::person.")

    def test_membership_inheritance(self, university_kb):
        assert university_kb.holds("?- john:person.")

    def test_type_correctness_rho1(self, university_kb):
        # john[age->33] and person[age*=>number] entail 33:number.
        assert university_kb.holds("?- 33:number.")

    def test_type_inheritance_to_members(self, university_kb):
        # john inherits person's age signature.
        assert university_kb.holds("?- john[age*=>number].")

    def test_materialise_cached(self, university_kb):
        first = university_kb.materialise()
        second = university_kb.materialise()
        assert first is second

    def test_mutation_invalidates_cache(self, university_kb):
        first = university_kb.materialise()
        university_kb.add("zoe:student.")
        second = university_kb.materialise()
        assert first is not second
        assert university_kb.holds("?- zoe:person.")

    def test_empty_kb(self):
        kb = KnowledgeBase()
        assert len(kb.materialise()) == 0
        assert kb.ask("?- X:person.") == []


class TestConsistency:
    def test_consistent_kb(self, university_kb):
        assert university_kb.is_consistent()

    def test_functional_violation_detected(self):
        kb = KnowledgeBase().load(
            """
            person[age {0:1} *=> number].
            john:person.
            john[age->33].
            john[age->44].
            """
        )
        assert not kb.is_consistent()
        with pytest.raises(ChaseFailure):
            kb.materialise()

    def test_failure_cached_until_mutation(self):
        kb = KnowledgeBase()
        kb.add(funct(Constant("a"), Constant("o")))
        kb.add(data(Constant("o"), Constant("a"), Constant("x")))
        kb.add(data(Constant("o"), Constant("a"), Constant("y")))
        assert not kb.is_consistent()
        assert not kb.is_consistent()  # cached failure path


class TestAsk:
    def test_paper_meta_query_subclasses(self, university_kb):
        answers = university_kb.ask("?- X::person.")
        names = {str(a[0]) for a in answers}
        assert names == {"freshman", "student", "employee"}

    def test_paper_meta_query_signatures(self, university_kb):
        answers = university_kb.ask("?- student[Att*=>string].")
        names = {str(a[0]) for a in answers}
        assert names == {"name", "major"}

    def test_paper_mixed_query(self, university_kb):
        answers = university_kb.ask("?- student[Att*=>string], john[Att->Val].")
        got = {(str(a[0]), str(a[1])) for a in answers}
        assert got == {("name", "John Doe"), ("major", "CS")}

    def test_rule_style_query(self, university_kb):
        answers = university_kb.ask("q(X) :- X:person.")
        assert {str(a[0]) for a in answers} >= {"john", "mary"}

    def test_conjunctive_query_object(self, university_kb):
        X = Variable("X")
        q = ConjunctiveQuery("q", (X,), (member(X, Constant("person")),))
        assert university_kb.ask(q)

    def test_certain_only_filters_invented(self):
        kb = KnowledgeBase().load(
            """
            person[name {1:*} *=> string].
            bob:person.
            """
        )
        all_answers = kb.ask("?- bob[name->V].")
        certain = kb.ask("?- bob[name->V].", certain_only=True)
        assert len(all_answers) == 1 and not all_answers[0].certain
        assert certain == []

    def test_answers_sorted_deterministically(self, university_kb):
        first = university_kb.ask("?- X::person.")
        second = university_kb.ask("?- X::person.")
        assert first == second == sorted(first, key=lambda a: str(a[0]))

    def test_fact_string_rejected_as_query(self, university_kb):
        with pytest.raises(ReproError):
            university_kb.ask("john:student.")

    def test_unknown_type_rejected(self, university_kb):
        with pytest.raises(TypeError):
            university_kb.ask(42)  # type: ignore[arg-type]


class TestAnswer:
    def test_certain_flag(self):
        from repro.core.terms import Null

        assert Answer((Constant("a"),)).certain
        assert not Answer((Null(1),)).certain

    def test_repr_marks_uncertain(self):
        from repro.core.terms import Null

        assert "(uncertain)" in repr(Answer((Null(1),)))
