"""Unit tests for the F-logic pretty-printer."""

import pytest

from repro.core.atoms import Atom, data, funct, mandatory, member, sub, type_
from repro.core.errors import EncodingError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.flogic import (
    encode_program,
    encode_rule,
    facts_to_flogic,
    parse_program,
    parse_statement,
    program_to_flogic,
    query_to_flogic,
)

j, p, n, age, name = (Constant(x) for x in ("john", "person", "number", "age", "name"))


class TestFactsToFlogic:
    def test_memberships_and_subclasses_one_per_line(self):
        text = facts_to_flogic([member(j, p), sub(p, Constant("agent"))])
        assert "john:person." in text
        assert "person::agent." in text

    def test_frame_specs_grouped_per_host(self):
        atoms = [
            data(j, age, Constant("33")),
            data(j, name, Constant("jd")),
            type_(p, age, n),
        ]
        text = facts_to_flogic(atoms)
        john_lines = [line for line in text.splitlines() if line.startswith("john[")]
        assert len(john_lines) == 1
        assert "age->33" in john_lines[0] and "name->jd" in john_lines[0]

    def test_ungrouped_mode(self):
        atoms = [data(j, age, Constant("33")), data(j, name, Constant("jd"))]
        text = facts_to_flogic(atoms, group=False)
        assert len(text.splitlines()) == 2

    def test_cardinality_atoms_render(self):
        text = facts_to_flogic([mandatory(name, p), funct(age, p)])
        assert "name {1:*} *=> _" in text
        assert "age {0:1} *=> _" in text

    def test_roundtrip_through_parser(self):
        atoms = [
            member(j, p),
            sub(p, Constant("agent")),
            data(j, age, Constant("33")),
            type_(p, age, n),
            mandatory(name, p),
            funct(age, p),
        ]
        text = facts_to_flogic(atoms)
        facts, _, _ = encode_program(parse_program(text))
        assert set(facts) == set(atoms)

    def test_rejects_non_pfl(self):
        with pytest.raises(EncodingError):
            facts_to_flogic([Atom("likes", (j, p))])

    def test_deterministic(self):
        atoms = [member(j, p), sub(p, Constant("agent")), data(j, age, Constant("1"))]
        assert facts_to_flogic(atoms) == facts_to_flogic(reversed(atoms))


class TestQueryToFlogic:
    def test_paper_query_renders_as_molecules(self):
        q = encode_rule(
            parse_statement("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>W].")
        )
        text = query_to_flogic(q)
        assert text == "q(A, B) :- T1[A*=>T2], T2::T3, T3[B*=>W]."

    def test_cardinality_molecules(self):
        q = encode_rule(parse_statement("q(A,C) :- C[A {1,*} *=> _], O:C."))
        text = query_to_flogic(q)
        assert "{1:*} *=> _" in text and "O:C" in text

    @pytest.mark.parametrize(
        "source",
        [
            "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>W].",
            "q(V1,V2) :- data(O,A,V1), data(O,A,V2), funct(A,C), member(O,C).",
            "q(O) :- O:C, C[A {0:1} *=> T].",
        ],
    )
    def test_roundtrip(self, source):
        q = encode_rule(parse_statement(source))
        text = query_to_flogic(q)
        again = encode_rule(parse_statement(text))
        assert set(again.body) == set(q.body)
        assert again.head == q.head


class TestProgramToFlogic:
    def test_facts_then_rules(self):
        q = encode_rule(parse_statement("q(X) :- X:person."))
        text = program_to_flogic([member(j, p)], [q])
        lines = text.splitlines()
        assert lines[0] == "john:person."
        assert lines[-1].startswith("q(X)")

    def test_empty(self):
        assert program_to_flogic() == ""
