"""Unit tests for the F-logic Lite parser."""

import pytest

from repro.core.errors import ParseError
from repro.core.terms import Constant, Variable
from repro.flogic.ast import (
    Cardinality,
    DataAtom,
    FLFact,
    FLQuery,
    FLRule,
    IsaAtom,
    PredicateAtom,
    SignatureAtom,
    SubclassAtom,
)
from repro.flogic.parser import parse_program, parse_statement


class TestFacts:
    def test_membership_fact(self):
        stmt = parse_statement("john:student.")
        assert isinstance(stmt, FLFact)
        assert stmt.atom == IsaAtom(Constant("john"), Constant("student"))

    def test_subclass_fact(self):
        stmt = parse_statement("freshman::student.")
        assert stmt.atom == SubclassAtom(Constant("freshman"), Constant("student"))

    def test_data_fact(self):
        stmt = parse_statement("john[age->33].")
        assert stmt.atom == DataAtom(Constant("john"), Constant("age"), Constant("33"))

    def test_signature_fact_with_type(self):
        stmt = parse_statement("person[age*=>number].")
        atom = stmt.atom
        assert isinstance(atom, SignatureAtom)
        assert atom.value_type == Constant("number")
        assert atom.cardinality is None

    def test_signature_with_mandatory_cardinality(self):
        stmt = parse_statement("person[name {1:*} *=> string].")
        assert stmt.atom.cardinality is Cardinality.MANDATORY

    def test_signature_with_functional_cardinality(self):
        stmt = parse_statement("person[age {0:1} *=> number].")
        assert stmt.atom.cardinality is Cardinality.FUNCTIONAL

    def test_paper_comma_cardinality_variant(self):
        """The paper writes {1,*} in one example; both separators parse."""
        stmt = parse_statement("person[name {1,*} *=> string].")
        assert stmt.atom.cardinality is Cardinality.MANDATORY

    def test_signature_fact_cardinality_only(self):
        stmt = parse_statement("person[name {1:*} *=> _].")
        assert stmt.atom.value_type is None
        assert stmt.atom.cardinality is Cardinality.MANDATORY

    def test_signature_fact_bare_anon_type_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("person[name *=> _].")

    def test_unsupported_cardinality_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("person[kids {2:3} *=> person].")

    def test_plain_arrow_rejected_with_hint(self):
        with pytest.raises(ParseError) as err:
            parse_statement("person[age=>number].")
        assert "F-logic Lite" in str(err.value)

    def test_variable_in_fact_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("X:student.")

    def test_multi_spec_molecule_expands(self):
        program = parse_program("john[age->33, dept->cs].")
        assert len(program.statements) == 2
        assert all(isinstance(s, FLFact) for s in program.statements)

    def test_quoted_string_value(self):
        stmt = parse_statement("john[name->'John Doe'].")
        assert stmt.atom.value == Constant("John Doe")

    def test_raw_predicate_fact(self):
        stmt = parse_statement("member(john, student).")
        assert stmt.atom == PredicateAtom(
            "member", (Constant("john"), Constant("student"))
        )


class TestRules:
    def test_paper_joinable_rule(self):
        stmt = parse_statement("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].")
        assert isinstance(stmt, FLRule)
        assert stmt.head.predicate == "q"
        assert stmt.head.args == (Variable("A"), Variable("B"))
        assert len(stmt.body) == 3
        # The trailing _ became a fresh variable (cardinality-free body sig).
        last = stmt.body[-1]
        assert isinstance(last, SignatureAtom)
        assert last.value_type is not None and last.value_type.is_variable

    def test_cardinality_anon_in_body_drops_type(self):
        stmt = parse_statement("q(A) :- Class[A {1,*} *=> _].")
        sig = stmt.body[0]
        assert sig.value_type is None
        assert sig.cardinality is Cardinality.MANDATORY

    def test_mixed_predicate_and_molecule_body(self):
        stmt = parse_statement("q(O) :- member(O, C), C[age*=>number].")
        assert isinstance(stmt.body[0], PredicateAtom)
        assert isinstance(stmt.body[1], SignatureAtom)

    def test_anonymous_variables_distinct(self):
        stmt = parse_statement("q(A) :- T[A*=>_], U[A*=>_].")
        first = stmt.body[0].value_type
        second = stmt.body[1].value_type
        assert first != second

    def test_multi_spec_molecule_in_body(self):
        stmt = parse_statement("q(O) :- O[age->A, name->N].")
        assert len(stmt.body) == 2

    def test_isa_in_body(self):
        stmt = parse_statement("q(X) :- X:person.")
        assert isinstance(stmt.body[0], IsaAtom)


class TestQueries:
    def test_ask_query(self):
        stmt = parse_statement("?- X::person.")
        assert isinstance(stmt, FLQuery)
        assert isinstance(stmt.body[0], SubclassAtom)

    def test_ask_with_multiple_atoms(self):
        stmt = parse_statement("?- student[Att*=>string], john[Att->Val].")
        assert len(stmt.body) == 2

    def test_anon_member_query(self):
        stmt = parse_statement("?- _:Class.")
        isa = stmt.body[0]
        assert isa.instance.is_variable  # expanded to fresh variable


class TestProgramsAndErrors:
    def test_program_with_all_statement_kinds(self):
        program = parse_program(
            """
            % facts
            john:student.
            q(X) :- X:student.
            ?- X:person.
            """
        )
        assert len(program.facts()) == 1
        assert len(program.rules()) == 1
        assert len(program.queries()) == 1

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_program("john:student")

    def test_trailing_garbage_single_statement(self):
        with pytest.raises(ParseError):
            parse_statement("a:b. c:d.")

    def test_parse_statement_rejects_multi_expansion(self):
        with pytest.raises(ParseError):
            parse_statement("john[a->1, b->2].")

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as err:
            parse_program("a:b.\nc:::d.")
        assert err.value.line == 2

    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_str_of_parsed_statement_reparses(self):
        stmt = parse_statement("q(A,B) :- T1[A*=>T2], T2::T3.")
        again = parse_statement(str(stmt))
        assert str(again) == str(stmt)
