"""Unit tests for knowledge-base serialisation (save/load/to_flogic)."""

import pytest

from repro.flogic import KnowledgeBase


@pytest.fixture
def kb():
    return KnowledgeBase().load(
        """
        student::person.
        john:student.
        person[age {0:1} *=> number].
        john[age->33].
        """
    )


class TestToFlogic:
    def test_base_rendering_roundtrips(self, kb):
        clone = KnowledgeBase().load(kb.to_flogic())
        assert set(clone.base_facts) == set(kb.base_facts)

    def test_materialised_rendering_includes_entailments(self, kb):
        text = kb.to_flogic(materialised=True)
        assert "john:person." in text          # rho3
        assert "33:number." in text            # rho1

    def test_materialised_rendering_skips_nulls(self):
        kb = KnowledgeBase().load(
            "person[ssn {1:*} *=> string]. ada:person."
        )
        text = kb.to_flogic(materialised=True)
        assert "_v" not in text

    def test_materialised_rendering_reparses(self, kb):
        clone = KnowledgeBase().load(kb.to_flogic(materialised=True))
        assert clone.is_consistent()
        assert clone.holds("?- john:person.")


class TestSaveLoad:
    def test_save_then_from_file(self, kb, tmp_path):
        path = tmp_path / "kb.flq"
        kb.save(path)
        loaded = KnowledgeBase.from_file(path)
        assert set(loaded.base_facts) == set(kb.base_facts)
        assert loaded.holds("?- john:person.")

    def test_from_file_kwargs(self, kb, tmp_path):
        path = tmp_path / "kb.flq"
        kb.save(path)
        loaded = KnowledgeBase.from_file(path, max_invention_level=2)
        assert loaded.max_invention_level == 2
