"""Unit tests for the F-logic Lite tokenizer."""

import pytest

from repro.core.errors import ParseError
from repro.flogic.lexer import TokenType, tokenize


def types(text: str) -> list[TokenType]:
    return [t.type for t in tokenize(text)][:-1]  # drop EOF


def texts(text: str) -> list[str]:
    return [t.text for t in tokenize(text)][:-1]


class TestBasicTokens:
    def test_membership(self):
        assert types("john:student.") == [
            TokenType.IDENT,
            TokenType.COLON,
            TokenType.IDENT,
            TokenType.DOT,
        ]

    def test_subclass_double_colon(self):
        assert types("a::b") == [
            TokenType.IDENT,
            TokenType.DOUBLE_COLON,
            TokenType.IDENT,
        ]

    def test_implies_vs_colon(self):
        assert types(":- :")[0] == TokenType.IMPLIES
        assert types(":- :")[1] == TokenType.COLON

    def test_query_prefix(self):
        assert types("?- X:c.")[0] == TokenType.QUERY

    def test_data_arrow(self):
        assert TokenType.ARROW in types("john[age->33]")

    def test_inheritable_arrow(self):
        assert TokenType.INHERITABLE_ARROW in types("person[age*=>number]")

    def test_plain_arrow_lexed_separately(self):
        assert TokenType.PLAIN_ARROW in types("person[age=>number]")

    def test_star_alone(self):
        assert types("{1:*}") == [
            TokenType.LBRACE,
            TokenType.NUMBER,
            TokenType.COLON,
            TokenType.STAR,
            TokenType.RBRACE,
        ]

    def test_variables_vs_constants(self):
        got = types("X att Att _x _")
        assert got == [
            TokenType.VARIABLE,
            TokenType.IDENT,
            TokenType.VARIABLE,
            TokenType.VARIABLE,
            TokenType.ANON,
        ]

    def test_numbers(self):
        assert texts("33 3.14") == ["33", "3.14"]

    def test_number_followed_by_statement_dot(self):
        got = tokenize("john[age->33].")
        kinds = [t.type for t in got]
        assert kinds[-2] == TokenType.DOT  # the dot survives as punctuation


class TestStringsAndComments:
    def test_single_quoted_string(self):
        tokens = list(tokenize("'John Doe'"))
        assert tokens[0].type is TokenType.STRING
        assert tokens[0].text == "John Doe"

    def test_double_quoted_string(self):
        assert list(tokenize('"hi"'))[0].text == "hi"

    def test_escaped_quote(self):
        assert list(tokenize(r"'it\'s'"))[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            list(tokenize("'oops"))

    def test_percent_comment_skipped(self):
        assert types("% a comment\njohn:c.") == [
            TokenType.IDENT,
            TokenType.COLON,
            TokenType.IDENT,
            TokenType.DOT,
        ]

    def test_double_slash_comment(self):
        assert types("// note\nx:y.")[0] == TokenType.IDENT


class TestPositionsAndErrors:
    def test_line_and_column_tracked(self):
        tokens = list(tokenize("a:b.\nc:d."))
        second_line = [t for t in tokens if t.line == 2]
        assert second_line and second_line[0].text == "c"

    def test_unexpected_character(self):
        with pytest.raises(ParseError) as err:
            list(tokenize("a @ b"))
        assert "@" in str(err.value)

    def test_eof_always_last(self):
        assert list(tokenize(""))[-1].type is TokenType.EOF
