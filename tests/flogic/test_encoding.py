"""Unit tests for the F-logic <-> P_FL encoding."""

import pytest

from repro.core.atoms import data, funct, mandatory, member, sub, type_
from repro.core.errors import EncodingError
from repro.core.terms import Constant, Variable
from repro.flogic.ast import (
    Cardinality,
    DataAtom,
    IsaAtom,
    PredicateAtom,
    SignatureAtom,
    SubclassAtom,
)
from repro.flogic.encoding import (
    decode_atom,
    encode_atom,
    encode_program,
    encode_query,
    encode_rule,
)
from repro.flogic.parser import parse_program, parse_statement

j, s, p, n = (Constant(x) for x in ("john", "student", "person", "number"))
age = Constant("age")


class TestEncodeAtom:
    def test_isa(self):
        assert encode_atom(IsaAtom(j, s)) == (member(j, s),)

    def test_subclass(self):
        assert encode_atom(SubclassAtom(s, p)) == (sub(s, p),)

    def test_data(self):
        assert encode_atom(DataAtom(j, age, Constant("33"))) == (
            data(j, age, Constant("33")),
        )

    def test_signature_type_only(self):
        assert encode_atom(SignatureAtom(p, age, n)) == (type_(p, age, n),)

    def test_signature_mandatory_with_type(self):
        got = encode_atom(SignatureAtom(p, age, n, Cardinality.MANDATORY))
        assert set(got) == {mandatory(age, p), type_(p, age, n)}

    def test_signature_functional_with_type(self):
        got = encode_atom(SignatureAtom(p, age, n, Cardinality.FUNCTIONAL))
        assert set(got) == {funct(age, p), type_(p, age, n)}

    def test_signature_cardinality_only(self):
        got = encode_atom(SignatureAtom(p, age, None, Cardinality.MANDATORY))
        assert got == (mandatory(age, p),)

    def test_signature_nothing_asserted_rejected(self):
        with pytest.raises(EncodingError):
            encode_atom(SignatureAtom(p, age, None, None))

    def test_predicate_atom_validated(self):
        assert encode_atom(PredicateAtom("member", (j, s))) == (member(j, s),)
        with pytest.raises(Exception):
            encode_atom(PredicateAtom("likes", (j, s)))


class TestEncodeRuleQuery:
    def test_paper_rule_encodes_to_three_atoms(self):
        rule = parse_statement("q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].")
        cq = encode_rule(rule)
        assert cq.name == "q"
        assert cq.arity == 2
        assert [a.predicate for a in cq.body] == ["type", "sub", "type"]

    def test_mandatory_molecule_encodes_one_atom(self):
        rule = parse_statement("q(A,C) :- C[A {1,*} *=> _].")
        cq = encode_rule(rule)
        assert [a.predicate for a in cq.body] == ["mandatory"]

    def test_query_head_is_named_vars_in_order(self):
        ask = parse_statement("?- student[Att*=>string], john[Att->Val].")
        cq = encode_query(ask)
        assert [t.name for t in cq.head] == ["Att", "Val"]

    def test_query_anonymous_vars_not_projected(self):
        ask = parse_statement("?- _:Class.")
        cq = encode_query(ask)
        assert [t.name for t in cq.head] == ["Class"]

    def test_encode_program_partitions(self):
        program = parse_program(
            """
            john:student.
            q(X) :- X:person.
            ?- X::person.
            """
        )
        facts, rules, queries = encode_program(program)
        assert facts == (member(j, Constant("student")),)
        assert len(rules) == 1 and rules[0].name == "q"
        assert len(queries) == 1 and queries[0].name == "query1"

    def test_fact_with_variable_rejected_on_encode(self):
        from repro.flogic.ast import FLFact

        bad = FLFact(IsaAtom(Variable("X"), s))
        from repro.flogic.encoding import encode_fact

        with pytest.raises(EncodingError):
            encode_fact(bad)


class TestDecode:
    @pytest.mark.parametrize(
        "atom,expected",
        [
            (member(j, s), "john:student"),
            (sub(s, p), "student::person"),
            (data(j, age, Constant("33")), "john[age->33]"),
            (type_(p, age, n), "person[age*=>number]"),
            (mandatory(age, p), "person[age {1:*} *=> _]"),
            (funct(age, p), "person[age {0:1} *=> _]"),
        ],
    )
    def test_decode_forms(self, atom, expected):
        assert decode_atom(atom) == expected

    def test_decode_rejects_non_pfl(self):
        from repro.core.atoms import Atom

        with pytest.raises(EncodingError):
            decode_atom(Atom("likes", (j, s)))

    @pytest.mark.parametrize(
        "atom",
        [
            member(j, s),
            sub(s, p),
            data(j, age, Constant("33")),
            type_(p, age, n),
            mandatory(age, p),
            funct(age, p),
        ],
    )
    def test_decode_parse_encode_roundtrip(self, atom):
        """decode -> parse -> encode gives back the original atom."""
        text = decode_atom(atom) + "."
        program = parse_program(text)
        facts, _, _ = encode_program(program)
        assert atom in facts
