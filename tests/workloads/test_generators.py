"""Unit tests for the workload generators and the paper corpus."""

import random

import pytest

from repro.analysis.cycles import has_mandatory_cycle
from repro.containment import contained_classic, is_contained
from repro.core.atoms import P_FL_ARITIES
from repro.flogic.kb import KnowledgeBase
from repro.flogic.parser import parse_program
from repro.workloads import (
    EXAMPLE1_QUERY,
    EXAMPLE2_QUERY,
    PAPER_CONTAINMENT_PAIRS,
    PAPER_QUERIES,
    OntologyParams,
    QueryGenParams,
    QueryGenerator,
    generate_ontology,
    random_query,
    specialize,
)


class TestCorpus:
    def test_all_paper_queries_are_valid_pfl(self):
        for query in PAPER_QUERIES:
            query.validate_pfl()

    def test_pair_expectations_shape(self):
        for q1, q2, sigma, classic in PAPER_CONTAINMENT_PAIRS:
            assert q1.arity == q2.arity
            assert isinstance(sigma, bool) and isinstance(classic, bool)

    def test_example2_has_cycle(self):
        assert has_mandatory_cycle(EXAMPLE2_QUERY.body)

    def test_example1_sizes(self):
        assert EXAMPLE1_QUERY.size == 4
        assert EXAMPLE1_QUERY.arity == 2


class TestQueryGenerator:
    def test_deterministic_per_seed(self):
        assert QueryGenerator(3).queries(5) == QueryGenerator(3).queries(5)

    def test_different_seeds_differ(self):
        assert QueryGenerator(1).query() != QueryGenerator(2).query()

    def test_respects_atom_count(self):
        params = QueryGenParams(n_atoms=7, cycle_length=0)
        q = QueryGenerator(0, params).query()
        assert q.size == 7

    def test_bodies_are_valid_pfl(self):
        for seed in range(10):
            q = random_query(seed)
            q.validate_pfl()
            for atom in q.body:
                assert atom.arity == P_FL_ARITIES[atom.predicate]

    def test_head_arity_capped_by_variables(self):
        params = QueryGenParams(n_atoms=1, n_variables=1, head_arity=5)
        q = QueryGenerator(0, params).query()
        assert q.arity <= 1

    def test_planted_cycle_detected(self):
        q = random_query(4, cycle_length=2)
        assert has_mandatory_cycle(q.body)

    def test_no_cycle_when_not_requested(self):
        # mandatory+type coincidences are possible but rare with these params.
        params = QueryGenParams(
            n_atoms=4,
            cycle_length=0,
            predicate_weights={"member": 1.0, "sub": 1.0},
        )
        q = QueryGenerator(0, params).query()
        assert not has_mandatory_cycle(q.body)

    def test_queries_are_safe(self):
        for seed in range(10):
            q = random_query(seed)  # ConjunctiveQuery ctor enforces safety
            assert q.head_variables() <= q.variables()

    def test_containment_pair_same_arity(self):
        gen = QueryGenerator(9)
        for _ in range(10):
            q1, q2 = gen.containment_pair()
            assert q1.arity == q2.arity


class TestSpecialize:
    @pytest.mark.parametrize("seed", range(8))
    def test_specialisation_is_classically_contained(self, seed):
        rng = random.Random(seed)
        base = random_query(seed, n_atoms=3, head_arity=1)
        spec = specialize(base, rng=rng)
        assert contained_classic(spec, base).contained

    @pytest.mark.parametrize("seed", range(4))
    def test_specialisation_is_sigma_contained(self, seed):
        rng = random.Random(seed)
        base = random_query(seed, n_atoms=3, head_arity=1)
        spec = specialize(base, rng=rng)
        assert is_contained(spec, base).contained


class TestOntologyGenerator:
    def test_deterministic(self):
        assert generate_ontology(5).atoms == generate_ontology(5).atoms

    def test_all_facts_ground_pfl(self):
        ont = generate_ontology(1)
        for atom in ont.atoms:
            assert atom.is_ground
            assert atom.predicate in P_FL_ARITIES

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_kb_consistent(self, seed):
        ont = generate_ontology(seed)
        kb = KnowledgeBase()
        for atom in ont.atoms:
            kb.add(atom)
        assert kb.is_consistent()

    def test_flogic_rendering_reparses(self):
        ont = generate_ontology(2, OntologyParams(n_classes=3, n_objects=3))
        program = parse_program(ont.to_flogic())
        assert len(program.facts()) == len(ont.atoms)

    def test_subclass_graph_acyclic(self):
        ont = generate_ontology(3)
        edges = [
            (str(a.args[0]), str(a.args[1]))
            for a in ont.atoms
            if a.predicate == "sub"
        ]
        import networkx as nx

        graph = nx.DiGraph(edges)
        assert nx.is_directed_acyclic_graph(graph)

    def test_params_respected(self):
        params = OntologyParams(n_classes=4, n_objects=2, n_attributes=3)
        ont = generate_ontology(0, params)
        assert len(ont.classes) == 4
        assert len(ont.objects) == 2
        assert len(ont.attributes) == 3
