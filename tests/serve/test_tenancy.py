"""Token buckets, tenant policies, quota rejection semantics."""

from __future__ import annotations

import pytest

from repro.core.errors import AdmissionRejected
from repro.governance import ExecutionBudget
from repro.serve import (
    REASON_QUOTA,
    QuotaExceeded,
    TenantPolicy,
    TenantRegistry,
    TokenBucket,
)


class FakeClock:
    """A manually advanced monotonic clock for deterministic refill math."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 0.5 s * 2/s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_batch_larger_than_burst_never_admits(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=4.0, clock=clock)
        clock.advance(1000.0)
        assert not bucket.try_acquire(5.0)
        # ... and the failed attempt did not charge the bucket.
        assert bucket.available == pytest.approx(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestTenantPolicy:
    def test_from_dict_round_trip(self):
        policy = TenantPolicy.from_dict(
            {"rate": 5, "burst": 10, "deadline": 2.0, "max_facts": 100}
        )
        assert policy.rate == 5
        assert policy.burst == 10.0
        assert policy.budget == ExecutionBudget(
            deadline_seconds=2.0, max_facts=100
        )

    def test_from_dict_without_budget_keys(self):
        assert TenantPolicy.from_dict({"rate": 1}).budget is None

    def test_memory_mb_converts_to_bytes(self):
        policy = TenantPolicy.from_dict({"max_memory_mb": 2})
        assert policy.budget.max_memory_bytes == 2 * 1024 * 1024


class TestTenantRegistry:
    def test_unmetered_default_admits_forever(self):
        registry = TenantRegistry()
        for _ in range(100):
            registry.admit("anyone")
        assert registry.stats()["anyone"]["admitted"] == 100
        assert registry.stats()["anyone"]["metered"] is False

    def test_quota_exhaustion_is_a_structured_rejection(self):
        clock = FakeClock()
        registry = TenantRegistry(
            {"alice": TenantPolicy(rate=1.0, burst=2.0)}, clock=clock
        )
        registry.admit("alice")
        registry.admit("alice")
        with pytest.raises(QuotaExceeded) as excinfo:
            registry.admit("alice")
        assert excinfo.value.reason == REASON_QUOTA
        assert excinfo.value.tenant == "alice"
        # QuotaExceeded IS an AdmissionRejected: the protocol layer maps
        # queue overload and quota overload through one code path.
        assert isinstance(excinfo.value, AdmissionRejected)
        stats = registry.stats()["alice"]
        assert stats["admitted"] == 2 and stats["rejected"] == 1

    def test_rejected_tenant_recovers_after_refill(self):
        clock = FakeClock()
        registry = TenantRegistry(
            {"bob": TenantPolicy(rate=2.0, burst=1.0)}, clock=clock
        )
        registry.admit("bob")
        with pytest.raises(QuotaExceeded):
            registry.admit("bob")
        clock.advance(0.5)
        registry.admit("bob")

    def test_default_policy_meters_unknown_tenants(self):
        clock = FakeClock()
        registry = TenantRegistry(
            default_policy=TenantPolicy(rate=1.0, burst=1.0), clock=clock
        )
        registry.admit("stranger")
        with pytest.raises(QuotaExceeded):
            registry.admit("stranger")
        # Each unknown tenant gets its *own* bucket under the default
        # policy — one noisy stranger does not empty another's.
        registry.admit("other-stranger")

    def test_batch_charge_counts_pairs(self):
        clock = FakeClock()
        registry = TenantRegistry(
            {"carol": TenantPolicy(rate=1.0, burst=10.0)}, clock=clock
        )
        registry.admit("carol", tokens=8.0)
        with pytest.raises(QuotaExceeded):
            registry.admit("carol", tokens=3.0)

    def test_budget_for(self):
        envelope = ExecutionBudget(deadline_seconds=1.5)
        registry = TenantRegistry({"dave": TenantPolicy(budget=envelope)})
        assert registry.budget_for("dave") == envelope
        assert registry.budget_for("unknown") is None
