"""ShardRouter: determinism, balance, minimal movement, counters."""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.serve import ShardRouter, stable_key_digest
from repro.workloads import QueryGenerator


def _keys(n=200, seed=7):
    gen = QueryGenerator(seed)
    return [gen.query().canonical_key() for _ in range(n)]


class TestStableDigest:
    def test_same_key_same_digest(self):
        keys = _keys(20)
        assert [stable_key_digest(k) for k in keys] == [
            stable_key_digest(k) for k in keys
        ]

    def test_digest_is_64_bit(self):
        for key in _keys(20):
            assert 0 <= stable_key_digest(key) < 2**64

    def test_digest_survives_hash_randomisation(self):
        """The same canonical keys digest identically in a process with a
        different PYTHONHASHSEED — builtin ``hash`` would not."""
        keys = _keys(16)
        script = (
            "import json, sys\n"
            "from repro.serve import ShardRouter, stable_key_digest\n"
            "from repro.workloads import QueryGenerator\n"
            "gen = QueryGenerator(7)\n"
            "keys = [gen.query().canonical_key() for _ in range(16)]\n"
            "router = ShardRouter(4)\n"
            "print(json.dumps({\n"
            "    'digests': [stable_key_digest(k) for k in keys],\n"
            "    'shards': [router.shard_of_key(k) for k in keys],\n"
            "}))\n"
        )
        outs = []
        for seed in ("0", "4242"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                cwd="/root/repo",
                check=True,
            )
            outs.append(json.loads(proc.stdout))
        assert outs[0] == outs[1]
        assert outs[0]["digests"] == [stable_key_digest(k) for k in keys]
        router = ShardRouter(4)
        assert outs[0]["shards"] == [router.shard_of_key(k) for k in keys]


class TestRouting:
    def test_two_router_instances_agree(self):
        a, b = ShardRouter(5), ShardRouter(5)
        for key in _keys():
            assert a.shard_of_key(key) == b.shard_of_key(key)

    def test_rename_apart_variants_share_a_shard(self):
        gen = QueryGenerator(3)
        router = ShardRouter(8)
        for _ in range(20):
            q = gen.query()
            renamed, _sigma = q.rename_apart(q.variables())
            assert renamed.canonical_key() == q.canonical_key()
            assert router.shard_of_key(q.canonical_key()) == router.shard_of_key(
                renamed.canonical_key()
            )

    def test_all_shards_in_range(self):
        router = ShardRouter(3)
        for key in _keys():
            assert 0 <= router.shard_of_key(key) < 3

    def test_single_shard_takes_everything(self):
        router = ShardRouter(1)
        assert router.spread(_keys(50)) == [50]

    def test_spread_is_roughly_balanced(self):
        keys = _keys(1000, seed=13)
        counts = ShardRouter(4).spread(keys)
        assert sum(counts) == 1000
        # Consistent hashing with 128 vnodes: every shard owns a real
        # slice (no starved shard, no shard owning the world).
        assert min(counts) > 100
        assert max(counts) < 500

    def test_resharding_moves_a_minority_of_keys(self):
        keys = _keys(1000, seed=29)
        before = ShardRouter(4)
        after = ShardRouter(5)
        moved = sum(
            1
            for k in keys
            if before.shard_of_key(k) != after.shard_of_key(k)
        )
        # Ideal movement for 4 -> 5 shards is 1/5 of keys; allow slack
        # but require far less than a full reshuffle (which would be ~0.8).
        assert moved / len(keys) < 0.45

    def test_route_counts_and_none_goes_to_shard_zero(self, simple_cq):
        router = ShardRouter(2)
        shard = router.route(simple_cq)
        assert router.routed[shard] == 1
        assert router.route(None) == 0
        assert router.routed[0] >= 1
        assert sum(router.routed) == 2

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)
        with pytest.raises(ValueError):
            ShardRouter(2, vnodes=0)
