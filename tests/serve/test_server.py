"""ContainmentServer: the request path, sharding, quotas, TCP, drain."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.serve import (
    ConnectionState,
    ContainmentServer,
    TenantPolicy,
    TenantRegistry,
)
from repro.serve.protocol import parse_rule

Q1_TEXT = "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."
Q2_TEXT = "qq(A,B) :- T1[A*=>T2], T2[B*=>_]."

#: Generous upper bound on any single await in the TCP tests; the point
#: of the protocol is that every outcome is an *answer*, so a test that
#: trips this timeout has found a hang.
WAIT = 30.0


def serve(line: str, server: ContainmentServer, conn=None) -> dict:
    return server.handle_line(line, conn if conn is not None else ConnectionState())


class TestHandleLine:
    def test_ping_reports_protocol_version(self):
        with ContainmentServer() as server:
            response = serve('{"op": "ping"}', server)
        assert response == {"ok": True, "op": "ping", "protocol": 2}

    def test_blank_line_gets_no_response(self):
        with ContainmentServer() as server:
            assert serve("   \n", server) is None

    def test_check_reports_shard_and_tenant(self):
        with ContainmentServer(shards=3) as server:
            response = serve(
                json.dumps({"id": 9, "q1": Q1_TEXT, "q2": Q2_TEXT}), server
            )
        assert response["ok"] is True
        assert response["id"] == 9
        assert response["decision"] == "TRUE"
        assert response["tenant"] == "default"
        expected = server.router.shard_of_key(
            parse_rule(Q1_TEXT, "q1").canonical_key()
        )
        assert response["shard"] == expected

    def test_bad_json_and_unknown_op_reasons(self):
        with ContainmentServer() as server:
            bad = serve("{nope", server)
            unknown = serve('{"op": "frobnicate"}', server)
        assert bad["ok"] is False and bad["reason"] == "bad-request"
        assert unknown["ok"] is False and unknown["reason"] == "unknown-op"
        assert "frobnicate" in unknown["error"]

    def test_tenant_is_sticky_per_connection(self):
        with ContainmentServer() as server:
            conn = ConnectionState()
            first = serve(
                json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT, "tenant": "alice"}),
                server,
                conn,
            )
            second = serve(
                json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT}), server, conn
            )
        assert first["tenant"] == "alice"
        assert second["tenant"] == "alice"

    def test_check_all_routes_pair_by_pair(self):
        with ContainmentServer(shards=2) as server:
            response = serve(
                json.dumps(
                    {
                        "op": "check_all",
                        "pairs": [
                            {"q1": Q1_TEXT, "q2": Q2_TEXT},
                            {"q1": Q2_TEXT, "q2": Q1_TEXT},
                        ],
                    }
                ),
                server,
            )
        assert response["ok"] is True and response["pairs"] == 2
        decisions = [r["decision"] for r in response["results"]]
        assert decisions == ["TRUE", "FALSE"]
        for r in response["results"]:
            assert r["shard"] in (0, 1)

    def test_stats_has_serve_and_tenant_sections(self):
        with ContainmentServer(shards=2) as server:
            serve(json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT}), server)
            response = serve('{"op": "stats"}', server)
        stats = response["stats"]
        assert stats["serve"]["shards"] == 2
        assert stats["serve"]["requests"] == 2
        assert stats["serve"]["draining"] is False
        assert sum(stats["serve"]["routed"]) == 1
        assert stats["service"]["checks"] == 1
        assert "default" in stats["tenants"]

    def test_shard_stats_reports_hit_gauges(self):
        with ContainmentServer(shards=2) as server:
            line = json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT})
            serve(line, server)
            serve(line, server)  # second one is a decided-result hit
            response = serve('{"op": "shard_stats"}', server)
        rows = response["shards"]
        assert [row["shard"] for row in rows] == [0, 1]
        hot = [row for row in rows if row["routed"] == 2]
        assert len(hot) == 1
        assert hot[0]["result_hit_rate"] == pytest.approx(0.5)
        assert hot[0]["store_hit_rate"] is not None

    def test_quota_exhaustion_is_answered_not_hung(self):
        registry = TenantRegistry({"alice": TenantPolicy(rate=0.001, burst=1.0)})
        with ContainmentServer(tenants=registry) as server:
            conn = ConnectionState()
            first = serve(
                json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT, "tenant": "alice"}),
                server,
                conn,
            )
            second = serve(
                json.dumps({"id": 2, "q1": Q1_TEXT, "q2": Q2_TEXT}), server, conn
            )
        assert first["ok"] is True
        assert second == {
            "ok": False,
            "error": second["error"],
            "reason": "quota-exhausted",
            "id": 2,
        }
        assert server.stats.rejections_by_reason == {"quota-exhausted": 1}

    def test_ping_and_stats_ignore_quotas(self):
        registry = TenantRegistry(
            default_policy=TenantPolicy(rate=0.001, burst=1.0)
        )
        with ContainmentServer(tenants=registry) as server:
            conn = ConnectionState()
            serve(json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT}), server, conn)
            for _ in range(3):
                assert serve('{"op": "ping"}', server, conn)["ok"] is True
                assert serve('{"op": "stats"}', server, conn)["ok"] is True

    def test_tenant_budget_envelope_caps_requests(self):
        registry = TenantRegistry(
            {"capped": TenantPolicy(budget=TenantPolicy.from_dict(
                {"deadline": 0.0}
            ).budget)}
        )
        with ContainmentServer(tenants=registry) as server:
            response = serve(
                json.dumps(
                    {"q1": Q1_TEXT, "q2": Q2_TEXT, "tenant": "capped"}
                ),
                server,
            )
        # A zero-second tenant deadline turns every answer into a clean
        # UNKNOWN — budget exhaustion is a verdict, not an error.
        assert response["ok"] is True
        assert response["decision"] == "UNKNOWN"
        assert response["contained"] is None

    def test_routing_is_deterministic_across_server_instances(self):
        line = json.dumps({"q1": Q1_TEXT, "q2": Q2_TEXT})
        shards = []
        for _ in range(2):
            with ContainmentServer(shards=4) as server:
                shards.append(serve(line, server)["shard"])
        assert shards[0] == shards[1]


class TestDrain:
    def test_drain_is_idempotent_and_ends_stdio(self):
        import io

        requests = "\n".join(
            ['{"id": 1, "op": "drain"}', '{"id": 2, "op": "ping"}']
        )
        out = io.StringIO()
        with ContainmentServer(shards=2) as server:
            rc = server.serve_stdio(io.StringIO(requests + "\n"), out)
        assert rc == 0
        lines = [json.loads(l) for l in out.getvalue().splitlines()]
        assert lines == [
            {"id": 1, "ok": True, "op": "drain", "drained": True, "shards": 2}
        ]

    def test_work_after_drain_is_rejected_with_reason(self):
        with ContainmentServer() as server:
            conn = ConnectionState()
            assert serve('{"op": "drain"}', server, conn)["drained"] is True
            rejected = serve(
                json.dumps({"id": 5, "q1": Q1_TEXT, "q2": Q2_TEXT}), server, conn
            )
            # Introspection stays available on a drained server.
            stats = serve('{"op": "stats"}', server, conn)
        assert rejected["ok"] is False and rejected["reason"] == "draining"
        assert stats["ok"] is True
        assert stats["stats"]["serve"]["draining"] is True


def tcp_session(server: ContainmentServer, session):
    """Run *session(ready)* against a live ``serve_tcp`` on an ephemeral
    port, where ``ready`` resolves to ``(reader, writer)`` of a fresh
    client connection.  Everything is wrapped in :data:`WAIT` timeouts —
    a hang is a failure, never a stuck test run.
    """

    async def main():
        bound = asyncio.get_running_loop().create_future()

        async def connect():
            host, port = await asyncio.wait_for(bound, WAIT)
            return await asyncio.wait_for(
                asyncio.open_connection(host, port), WAIT
            )

        serve_task = asyncio.ensure_future(
            server.serve_tcp(
                "127.0.0.1", 0, ready=lambda h, p: bound.set_result((h, p))
            )
        )
        try:
            await asyncio.wait_for(session(connect), WAIT * 2)
        finally:
            if not serve_task.done():
                serve_task.cancel()
            await asyncio.gather(serve_task, return_exceptions=True)

    asyncio.run(main())


async def rpc(reader, writer, obj) -> dict:
    writer.write((json.dumps(obj) + "\n").encode())
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), WAIT)
    assert line, "connection closed instead of answering"
    return json.loads(line)


class TestTcp:
    def test_round_trip_and_pipelining(self):
        server = ContainmentServer(shards=2)

        async def session(connect):
            reader, writer = await connect()
            assert (await rpc(reader, writer, {"op": "ping"}))["protocol"] == 2
            # Pipelined requests: fire both, then collect by id.
            for i, (q1, q2) in enumerate([(Q1_TEXT, Q2_TEXT), (Q2_TEXT, Q1_TEXT)]):
                writer.write(
                    (json.dumps({"id": i, "q1": q1, "q2": q2}) + "\n").encode()
                )
            await writer.drain()
            got = {}
            for _ in range(2):
                line = await asyncio.wait_for(reader.readline(), WAIT)
                response = json.loads(line)
                got[response["id"]] = response
            assert got[0]["decision"] == "TRUE"
            assert got[1]["decision"] == "FALSE"
            stats = await rpc(reader, writer, {"op": "stats"})
            assert stats["stats"]["serve"]["connections"] == 1
            writer.close()

        with server:
            tcp_session(server, session)

    def test_connection_survives_errors_and_counts_rejections(self):
        registry = TenantRegistry(
            {"alice": TenantPolicy(rate=0.001, burst=1.0)}
        )
        server = ContainmentServer(tenants=registry)

        async def session(connect):
            reader, writer = await connect()
            bad = await rpc(reader, writer, {"op": "wat", "id": 1})
            assert bad["reason"] == "unknown-op"
            ok = await rpc(
                reader,
                writer,
                {"id": 2, "q1": Q1_TEXT, "q2": Q2_TEXT, "tenant": "alice"},
            )
            assert ok["ok"] is True
            rejected = await rpc(
                reader, writer, {"id": 3, "q1": Q1_TEXT, "q2": Q2_TEXT}
            )
            assert rejected["reason"] == "quota-exhausted"
            stats = await rpc(reader, writer, {"op": "stats", "id": 4})
            # Only admission backpressure counts as a rejection; a typo'd
            # op is a client error, not the server pushing back.
            by_reason = stats["stats"]["serve"]["rejections_by_reason"]
            assert by_reason == {"quota-exhausted": 1}
            writer.close()

        with server:
            tcp_session(server, session)

    def test_drain_finishes_inflight_while_rejecting_new_admits(self):
        server = ContainmentServer(shards=2)
        shard = server.router.shard_of_key(
            parse_rule(Q1_TEXT, "q1").canonical_key()
        )
        checker = server.engines[shard].checker
        started = threading.Event()
        gate = threading.Event()
        original = checker.check

        def gated_check(*args, **kwargs):
            started.set()
            assert gate.wait(WAIT), "test gate never released"
            return original(*args, **kwargs)

        checker.check = gated_check

        async def session(connect):
            loop = asyncio.get_running_loop()
            r1, w1 = await connect()
            r2, w2 = await connect()
            # 1. A check goes in-flight (its worker blocks on the gate).
            w1.write(
                (json.dumps({"id": 1, "q1": Q1_TEXT, "q2": Q2_TEXT}) + "\n").encode()
            )
            await w1.drain()
            assert await loop.run_in_executor(None, started.wait, WAIT)
            # 2. Drain starts on another connection; it must not answer
            #    while the check is still running.
            w2.write(b'{"id": 10, "op": "drain"}\n')
            await w2.drain()
            while not server.draining:
                await asyncio.sleep(0.01)
            # 3. New work is rejected immediately — the draining server
            #    still answers every line.
            rejected = await rpc(
                r2, w2, {"id": 11, "q1": Q2_TEXT, "q2": Q1_TEXT}
            )
            assert rejected["reason"] == "draining"
            assert rejected["id"] == 11
            # 4. Release the gate: the in-flight check completes fine,
            #    then — and only then — the drain answers.
            gate.set()
            inflight = json.loads(await asyncio.wait_for(r1.readline(), WAIT))
            assert inflight["id"] == 1 and inflight["ok"] is True
            assert inflight["decision"] == "TRUE"
            drained = json.loads(await asyncio.wait_for(r2.readline(), WAIT))
            assert drained["id"] == 10
            assert drained["drained"] is True
            w1.close()
            w2.close()

        with server:
            tcp_session(server, session)

    def test_front_door_overload_rejects_queue_full(self):
        # A tiny capacity server: one active slot, no pending room.
        server = ContainmentServer(max_active=1, max_pending=0)
        checker = server.engines[0].checker
        started = threading.Event()
        gate = threading.Event()
        original = checker.check

        def gated_check(*args, **kwargs):
            started.set()
            assert gate.wait(WAIT), "test gate never released"
            return original(*args, **kwargs)

        checker.check = gated_check
        assert server.inflight_cap == 1

        async def session(connect):
            loop = asyncio.get_running_loop()
            reader, writer = await connect()
            writer.write(
                (json.dumps({"id": 1, "q1": Q1_TEXT, "q2": Q2_TEXT}) + "\n").encode()
            )
            await writer.drain()
            assert await loop.run_in_executor(None, started.wait, WAIT)
            # The cap is full: the next work line answers queue-full
            # *now*, while the first request is still executing.
            rejected = await rpc(
                reader, writer, {"id": 2, "q1": Q2_TEXT, "q2": Q1_TEXT}
            )
            assert rejected["reason"] == "queue-full"
            gate.set()
            first = json.loads(await asyncio.wait_for(reader.readline(), WAIT))
            assert first["id"] == 1 and first["ok"] is True
            writer.close()

        with server:
            tcp_session(server, session)
