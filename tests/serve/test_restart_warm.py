"""A restarted serving fleet answers repeat requests from the snapshot store.

The acceptance scenario of the persistent tier: every shard of a
:class:`~repro.serve.server.ContainmentServer` opens the same snapshot
database, the ``"always"`` policy persists each decided chase at session
close, and a server built later over the same path — a restart, or a
fleet resharded to a different count — serves the repeat request as a
``snapshot-hit`` with **zero** chase recomputation.  Exercised twice:
in-process (handle_line), and end-to-end over ``flq serve`` stdio with the
first process killed with SIGKILL (no graceful flush) between requests.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.serve import ConnectionState, ContainmentServer
from repro.store import StoreConfig

Q1_TEXT = "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."
Q2_TEXT = "qq(A,B) :- T1[A*=>T2], T2[B*=>_]."

REPO_ROOT = Path(__file__).resolve().parents[2]


def serve(line: str, server: ContainmentServer) -> dict:
    return server.handle_line(line, ConnectionState())


def check_line(request_id: int) -> str:
    return json.dumps({"id": request_id, "q1": Q1_TEXT, "q2": Q2_TEXT})


class TestInProcessRestart:
    def test_restarted_server_hits_the_store(self, tmp_path):
        config = StoreConfig(path=tmp_path / "chase.db")
        with ContainmentServer(shards=2, store_config=config) as first:
            response = serve(check_line(1), first)
            assert response["ok"] is True
            decision = response["decision"]

        # A brand-new fleet over the same path: the repeat request must be
        # answered from the persisted store, not by re-chasing.
        with ContainmentServer(shards=2, store_config=config) as second:
            response = serve(check_line(2), second)
            assert response["ok"] is True
            assert response["decision"] == decision
            store = serve('{"op": "stats"}', second)["stats"]["store"]
        assert store["misses"] == 0
        assert store["snapshot_hits"] >= 1

    def test_resharded_fleet_stays_warm(self, tmp_path):
        config = StoreConfig(path=tmp_path / "chase.db")
        with ContainmentServer(shards=1, store_config=config) as first:
            assert serve(check_line(1), first)["ok"] is True
        # Different shard count, same store directory: the query may land
        # on a different shard, but every shard reads the same database.
        with ContainmentServer(shards=3, store_config=config) as second:
            assert serve(check_line(2), second)["ok"] is True
            store = serve('{"op": "stats"}', second)["stats"]["store"]
        assert store["misses"] == 0
        assert store["snapshot_hits"] >= 1


class TestKilledServeProcess:
    def test_sigkilled_serve_restarts_warm(self, tmp_path):
        """kill -9 between requests; the restart answers from the store."""
        db = tmp_path / "chase.db"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--shards",
            "2",
            "--store-path",
            str(db),
        ]

        first = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            first.stdin.write(check_line(1) + "\n")
            first.stdin.flush()
            response = json.loads(first.stdout.readline())
            assert response["ok"] is True
            decision = response["decision"]
            # The "always" policy persisted at session close, *before* this
            # kill — SIGKILL leaves no chance for an atexit flush.
            first.send_signal(signal.SIGKILL)
            first.wait(timeout=60)
        finally:
            if first.poll() is None:
                first.kill()
                first.wait(timeout=60)
        assert db.exists()

        second = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            second.stdin.write(check_line(2) + "\n")
            second.stdin.write('{"op": "stats"}\n')
            second.stdin.flush()
            repeat = json.loads(second.stdout.readline())
            stats = json.loads(second.stdout.readline())
            second.stdin.close()  # EOF: stdio server exits 0
            assert second.wait(timeout=60) == 0
        finally:
            if second.poll() is None:
                second.kill()
                second.wait(timeout=60)

        assert repeat["ok"] is True
        assert repeat["decision"] == decision
        store = stats["stats"]["store"]
        assert store["misses"] == 0  # no chase recomputation after restart
        assert store["snapshot_hits"] >= 1
