"""Tests of :mod:`repro.serve`: sharding, tenancy, the network server."""
