"""Unit tests for schema-relative containment."""

import pytest

from repro.containment import ContainmentChecker, is_contained
from repro.core.atoms import data, mandatory, member, sub, type_
from repro.core.errors import QueryError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

B, T, A, O = (Variable(n) for n in "B T A O".split())
book, publication, title = (Constant(x) for x in ("book", "publication", "title"))

books = ConjunctiveQuery("books", (B,), (member(B, book),))
pubs = ConjunctiveQuery("pubs", (B,), (member(B, publication),))

SCHEMA = (sub(book, publication),)


class TestRelativeContainment:
    def test_absolute_fails_relative_holds(self):
        assert not is_contained(books, pubs).contained
        assert is_contained(books, pubs, schema=SCHEMA).contained

    def test_relative_never_weaker_than_absolute(self):
        """Absolute containment implies relative containment."""
        q1 = ConjunctiveQuery("q1", (B,), (member(B, book), sub(book, publication)))
        assert is_contained(q1, pubs).contained
        assert is_contained(q1, pubs, schema=SCHEMA).contained

    def test_empty_schema_is_absolute(self):
        assert (
            is_contained(books, pubs, schema=()).contained
            == is_contained(books, pubs).contained
        )

    def test_unrelated_schema_changes_nothing(self):
        other = (sub(Constant("car"), Constant("vehicle")),)
        assert not is_contained(books, pubs, schema=other).contained

    def test_schema_with_signature_and_mandatory(self):
        """Relative to 'title is mandatory on publication', every
        publication member has a title value."""
        schema = (
            sub(book, publication),
            mandatory(title, publication),
        )
        q2 = ConjunctiveQuery(
            "q2", (B,), (member(B, publication), data(B, title, T))
        )
        assert not is_contained(books, q2).contained
        assert is_contained(books, q2, schema=schema).contained

    def test_non_ground_schema_rejected(self):
        with pytest.raises(QueryError):
            is_contained(books, pubs, schema=(sub(B, publication),))

    def test_checker_api(self):
        checker = ContainmentChecker()
        assert checker.check(books, pubs, schema=SCHEMA).contained

    def test_verify_still_works_relative(self):
        result = is_contained(books, pubs, schema=SCHEMA)
        assert result.verify()

    def test_kb_schema_atoms_integration(self):
        from repro.flogic import KnowledgeBase

        kb = KnowledgeBase().load(
            """
            book::publication.
            publication[title {1:*} *=> string].
            b1:book.
            """
        )
        schema = kb.schema_atoms()
        assert sub(book, publication) in schema
        assert all(a.predicate != "member" for a in schema)
        assert is_contained(books, pubs, schema=schema).contained
