"""Unit tests for classic (Chandra–Merlin) containment."""

from repro.containment import ContainmentReason, contained_classic
from repro.core.atoms import data, member, sub
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
a = Constant("a")


class TestClassicContainment:
    def test_reflexive(self, simple_cq):
        assert contained_classic(simple_cq, simple_cq).contained

    def test_adding_atoms_specialises(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y), sub(Y, Z)))
        q2 = ConjunctiveQuery("q2", (X,), (member(X, Y),))
        result = contained_classic(q1, q2)
        assert result.contained
        assert result.reason is ContainmentReason.HOMOMORPHISM
        assert result.witness is not None
        assert not contained_classic(q2, q1).contained

    def test_renamed_queries_equivalent(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (Z,), (member(Z, W),))
        assert contained_classic(q1, q2).contained
        assert contained_classic(q2, q1).contained

    def test_identifying_variables_specialises(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, X),))
        q2 = ConjunctiveQuery("q2", (X,), (member(X, Y),))
        assert contained_classic(q1, q2).contained
        assert not contained_classic(q2, q1).contained

    def test_constants_specialise_variables(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, a),))
        q2 = ConjunctiveQuery("q2", (X,), (member(X, Y),))
        assert contained_classic(q1, q2).contained
        assert not contained_classic(q2, q1).contained

    def test_different_predicates_incomparable(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (X,), (sub(X, Y),))
        assert not contained_classic(q1, q2).contained
        assert not contained_classic(q2, q1).contained

    def test_cyclic_into_acyclic(self):
        """member cycle of length 2 is contained in a length-2 path query."""
        q_cycle = ConjunctiveQuery("qc", (), (member(X, Y), member(Y, X)))
        q_path = ConjunctiveQuery("qp", (), (member(X, Y), member(Y, Z)))
        assert contained_classic(q_cycle, q_path).contained
        assert not contained_classic(q_path, q_cycle).contained

    def test_result_explain_text(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (X,), (member(X, Y),))
        result = contained_classic(q1, q2)
        assert "q1" in result.explain() and "⊆" in result.explain()

    def test_negative_result_has_no_witness(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (X,), (member(X, a),))
        result = contained_classic(q1, q2)
        assert not result.contained
        assert result.witness is None
        assert result.reason is ContainmentReason.NO_HOMOMORPHISM

    def test_bool_protocol(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        assert bool(contained_classic(q1, q1))

    def test_paper_pairs_all_fail_classically(self, joinable_pair, mandatory_pair):
        for q1, q2 in (joinable_pair, mandatory_pair):
            assert not contained_classic(q1, q2).contained
