"""The anytime containment schedule: interleaved chase / delta search.

Three behaviours under test:

* **equivalence** — anytime and monolithic schedules decide the same
  relation, with the same reasons, and positive anytime verdicts carry a
  certificate that :meth:`ContainmentResult.verify` accepts;
* **early exit** — positive decisions stop at the witness level instead
  of materialising the Theorem-12 bound (visible in ``witness_level``,
  ``levels_chased`` and the ``containment.early_exit`` counter), while
  negative decisions never exit early;
* **parallel batch** — ``check_all(parallel=True)`` returns results in
  input order, verdict-identical to the sequential path.
"""

import pytest

from repro.containment.bounded import ContainmentChecker, theorem12_bound
from repro.containment.result import ContainmentReason
from repro.containment.store import OUTCOME_EXTEND, OUTCOME_FULL, OUTCOME_HIT
from repro.core.atoms import member, sub, type_
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.obs import MetricsRegistry, Observability
from repro.workloads.corpus import (
    EXAMPLE2_QUERY,
    PAPER_CONTAINMENT_PAIRS,
)
from repro.workloads.query_gen import QueryGenParams, QueryGenerator

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")


class TestScheduleEquivalence:
    @pytest.mark.parametrize(
        "q1, q2, expected",
        [(q1, q2, sigma) for q1, q2, sigma, _ in PAPER_CONTAINMENT_PAIRS],
        ids=[f"{q1.name}-vs-{q2.name}" for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS],
    )
    def test_paper_pairs_agree(self, q1, q2, expected):
        anytime = ContainmentChecker().check(q1, q2)
        monolithic = ContainmentChecker(anytime=False).check(q1, q2)
        assert anytime.contained == monolithic.contained == expected
        assert anytime.reason == monolithic.reason
        assert anytime.verify()
        assert monolithic.verify()

    def test_per_call_override_beats_checker_default(self):
        q1, q2, _, _ = PAPER_CONTAINMENT_PAIRS[0]
        checker = ContainmentChecker(anytime=False)
        overridden = checker.check(q1, q2, anytime=True)
        assert overridden.witness_level is not None
        default = checker.check(q1, q2)
        assert default.witness_level is None

    def test_reflexivity_is_a_level_zero_witness(self):
        q = EXAMPLE2_QUERY  # cyclic: the full bound would be expensive
        result = ContainmentChecker().check(q, q)
        assert result.contained
        assert result.witness_level == 0
        assert result.levels_chased == 0
        assert result.early_exit
        assert result.verify()

    def test_monolithic_results_have_no_witness_level(self):
        q1, q2, _, _ = PAPER_CONTAINMENT_PAIRS[0]
        result = ContainmentChecker(anytime=False).check(q1, q2)
        assert result.witness_level is None
        assert not result.early_exit
        assert result.levels_chased is not None


class TestEarlyExit:
    def positive_pair(self):
        for q1, q2, sigma, _ in PAPER_CONTAINMENT_PAIRS:
            if sigma:
                return q1, q2
        raise AssertionError("corpus has no positive pair")

    def test_witness_level_far_below_bound(self):
        q1, q2 = self.positive_pair()
        result = ContainmentChecker().check(q1, q2)
        assert result.witness_level is not None
        assert result.witness_level < theorem12_bound(q1, q2)
        assert result.early_exit

    def test_levels_chased_stops_at_witness(self):
        q1, q2 = self.positive_pair()
        result = ContainmentChecker().check(q1, q2)
        assert result.levels_chased == result.witness_level

    def test_chase_not_materialised_past_witness(self):
        # The stored run must not have been extended beyond the level the
        # witness needed — the saving the anytime schedule exists for.
        q1, q2 = self.positive_pair()
        checker = ContainmentChecker()
        result = checker.check(q1, q2)
        run = checker.store.peek(q1)
        assert run is not None
        assert run.saturated or run.bound <= result.witness_level + 1

    def test_negative_never_early_exits(self):
        for q1, q2, sigma, _ in PAPER_CONTAINMENT_PAIRS:
            if sigma:
                continue
            result = ContainmentChecker().check(q1, q2)
            assert not result.contained
            assert result.witness_level is None
            assert not result.early_exit

    def test_early_exit_metrics(self):
        obs = Observability(metrics=MetricsRegistry())
        checker = ContainmentChecker(obs=obs)
        q1, q2 = self.positive_pair()
        checker.check(q1, q2)
        metrics = obs.metrics.as_dict()["counters"]
        assert any("containment.early_exit" in k for k in metrics)
        assert any("hom.searches" in k for k in metrics)

    def test_delta_search_counter_on_deep_probes(self):
        # The paper pairs are too small to clear the bulk-delta threshold
        # (their level-1 deltas rival the whole instance, so the probe
        # falls back to full searches).  A cyclic generated pair chases
        # deep enough that later probes carry small deltas.
        params = QueryGenParams(
            n_atoms=4, n_variables=6, cycle_length=1, head_arity=1
        )
        q1, q2 = QueryGenerator(405, params).containment_pair()
        obs = Observability(metrics=MetricsRegistry())
        ContainmentChecker(obs=obs).check(q1, q2)
        metrics = obs.metrics.as_dict()["counters"]
        assert any("hom.delta_searches" in k for k in metrics)

    def test_explain_mentions_early_exit(self):
        q1, q2 = self.positive_pair()
        result = ContainmentChecker().check(q1, q2)
        assert "witness found at level" in result.explain()


class TestStoreOpen:
    def query(self):
        return ConjunctiveQuery(
            "q", (X,), (type_(Y, X, Z), sub(Z, W))
        )

    def test_open_does_not_chase(self):
        checker = ContainmentChecker()
        run, outcome = checker.store.open(self.query(), 6)
        assert outcome is OUTCOME_FULL
        assert run.bound == -1  # untouched: the caller drives extend_to

    def test_open_classifies_against_requested_bound(self):
        checker = ContainmentChecker()
        store = checker.store
        q = self.query()
        run, _ = store.open(q, 6)
        run.extend_to(2)
        _, second = store.open(q, 6)
        # Saturation may cover any bound; otherwise bound 2 < 6 extends.
        assert second is (OUTCOME_HIT if run.covers(6) else OUTCOME_EXTEND)
        _, third = store.open(q, 1)
        assert third is OUTCOME_HIT

    def test_anytime_checks_share_the_stored_session(self):
        checker = ContainmentChecker()
        q1, q2, _, _ = PAPER_CONTAINMENT_PAIRS[0]
        checker.check(q1, q2)
        checker.check(q1, q2)
        assert checker.stats.misses == 1
        assert checker.stats.reuses >= 1


class TestBatch:
    def pairs(self):
        return [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS] * 2

    def expected(self):
        return [sigma for _, _, sigma, _ in PAPER_CONTAINMENT_PAIRS] * 2

    def test_anytime_batch_matches_per_pair(self):
        results = ContainmentChecker().check_all(self.pairs())
        assert [r.contained for r in results] == self.expected()
        assert all(r.verify() for r in results)

    def test_monolithic_batch_matches_per_pair(self):
        results = ContainmentChecker().check_all(self.pairs(), anytime=False)
        assert [r.contained for r in results] == self.expected()

    def test_shared_chase_attributed_exactly_once_per_group(self):
        checker = ContainmentChecker()
        results = checker.check_all(self.pairs(), anytime=False)
        by_q1: dict[str, list] = {}
        for r in results:
            by_q1.setdefault(r.q1.name, []).append(r)
        for group in by_q1.values():
            billed = [r for r in group if r.shared_chase_seconds]
            # The group's chase bill lands on at most one result (zero
            # when the chase was instantaneous below timer resolution).
            assert len(billed) <= 1
            if billed:
                assert billed[0] is group[0]

    def test_anytime_batch_records_witness_levels(self):
        results = ContainmentChecker().check_all(self.pairs())
        for r, contained in zip(results, self.expected()):
            if contained:
                assert r.witness_level is not None
            else:
                assert r.witness_level is None

    def test_parallel_matches_sequential(self):
        pairs = self.pairs()
        seq = ContainmentChecker().check_all(pairs)
        par = ContainmentChecker().check_all(pairs, parallel=True, max_workers=2)
        assert len(par) == len(pairs)
        for s, p in zip(seq, par):
            assert s.contained == p.contained
            assert s.reason == p.reason
            assert s.witness_level == p.witness_level
            assert p.verify()

    def test_parallel_monolithic_matches_sequential(self):
        pairs = self.pairs()
        seq = ContainmentChecker().check_all(pairs, anytime=False)
        par = ContainmentChecker().check_all(
            pairs, anytime=False, parallel=True, max_workers=2
        )
        for s, p in zip(seq, par):
            assert s.contained == p.contained and s.reason == p.reason

    def test_parallel_single_group_runs_sequentially(self):
        # One distinct q1 = one group: nothing to parallelise, and the
        # parent store must keep serving (and counting) the requests.
        q1, q2, _, _ = PAPER_CONTAINMENT_PAIRS[0]
        checker = ContainmentChecker()
        results = checker.check_all([(q1, q2)] * 3, parallel=True)
        assert len(results) == 3
        assert checker.stats.requests == 3

    def test_empty_batch_parallel(self):
        assert ContainmentChecker().check_all([], parallel=True) == []
