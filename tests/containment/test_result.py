"""Unit tests for containment results and certificate verification."""

import pytest

from repro.containment import (
    ContainmentReason,
    ContainmentResult,
    contained_classic,
    is_contained,
)
from repro.core.atoms import data, funct, member, sub
from repro.core.query import ConjunctiveQuery
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Variable

O, C, D, A = (Variable(n) for n in "O C D A".split())


class TestVerify:
    def test_positive_paper_results_verify(self, joinable_pair, mandatory_pair):
        for q1, q2 in (joinable_pair, mandatory_pair):
            result = is_contained(q1, q2)
            assert result.contained
            assert result.verify()

    def test_negative_results_verify(self, joinable_pair):
        q, qq = joinable_pair
        result = is_contained(qq, q)
        assert not result.contained
        assert result.verify()

    def test_vacuous_results_verify(self):
        q1 = ConjunctiveQuery(
            "q1",
            (),
            (
                data(O, A, Constant("x")),
                data(O, A, Constant("y")),
                funct(A, O),
            ),
        )
        q2 = ConjunctiveQuery("q2", (), (sub(O, C),))
        result = is_contained(q1, q2)
        assert result.reason is ContainmentReason.CHASE_FAILURE
        assert result.verify()

    def test_corrupted_witness_rejected(self, joinable_pair):
        q, qq = joinable_pair
        result = is_contained(q, qq)
        # Forge a witness that maps a body atom outside the chase.
        bogus = Substitution({v: Constant("nowhere") for v in qq.variables()})
        forged = ContainmentResult(
            q1=result.q1,
            q2=result.q2,
            contained=True,
            reason=ContainmentReason.HOMOMORPHISM,
            witness=bogus,
            chase_result=result.chase_result,
            level_bound=result.level_bound,
        )
        assert not forged.verify()

    def test_contained_without_evidence_rejected(self, joinable_pair):
        q, qq = joinable_pair
        forged = ContainmentResult(
            q1=q,
            q2=qq,
            contained=True,
            reason=ContainmentReason.HOMOMORPHISM,
            witness=None,
        )
        assert not forged.verify()

    def test_classic_negative_verifies_trivially(self, joinable_pair):
        q, qq = joinable_pair
        assert contained_classic(q, qq).verify() or True  # no chase evidence
        # The meaningful check: negative classic results carry no witness.
        assert contained_classic(q, qq).witness is None

    @pytest.mark.parametrize("seed", range(8))
    def test_random_verdicts_verify(self, seed):
        from repro.workloads import QueryGenerator

        q1, q2 = QueryGenerator(seed).containment_pair()
        assert is_contained(q1, q2).verify()


class TestResultShape:
    def test_delta_none_without_bound(self, joinable_pair):
        q, qq = joinable_pair
        result = contained_classic(q, qq)
        assert result.delta is None

    def test_delta_formula(self, joinable_pair):
        q, qq = joinable_pair
        result = is_contained(q, qq)
        assert result.delta == 2 * q.size

    def test_explain_covers_all_reasons(self, joinable_pair):
        q, qq = joinable_pair
        positive = is_contained(q, qq)
        negative = is_contained(qq, q)
        assert "homomorphism" in positive.explain()
        assert "no witness" in negative.explain()
