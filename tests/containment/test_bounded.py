"""Unit tests for the Theorem-12 bounded-chase containment checker."""

import pytest

from repro.containment import (
    ContainmentChecker,
    ContainmentReason,
    contained_classic,
    is_contained,
    theorem12_bound,
)
from repro.core.atoms import data, funct, mandatory, member, sub, type_
from repro.core.errors import QueryError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable

A, B, T, U, O, C, X, Y, Z, W = (Variable(n) for n in "A B T U O C X Y Z W".split())


class TestBoundFormula:
    def test_theorem12_bound(self):
        q1 = ConjunctiveQuery("q1", (), (member(O, C), sub(C, U)))
        q2 = ConjunctiveQuery("q2", (), (member(O, C), member(O, U), sub(C, U)))
        assert theorem12_bound(q1, q2) == 3 * 2 * 2

    def test_delta_exposed_on_result(self):
        q = ConjunctiveQuery("q", (), (member(O, C),))
        result = is_contained(q, q)
        assert result.delta == 2


class TestPaperContainments:
    def test_joinable(self, joinable_pair):
        q, qq = joinable_pair
        assert is_contained(q, qq).contained
        assert not is_contained(qq, q).contained

    def test_mandatory(self, mandatory_pair):
        q, qq = mandatory_pair
        result = is_contained(q, qq)
        assert result.contained
        assert result.reason is ContainmentReason.HOMOMORPHISM
        assert not is_contained(qq, q).contained

    def test_witness_maps_to_invented_value(self, mandatory_pair):
        """The witness must bind qq's W to the null rho_5 invented."""
        q, qq = mandatory_pair
        result = is_contained(q, qq)
        bound_w = result.witness[Variable("W")]
        assert bound_w.is_null


class TestConstraintSpecificBehaviour:
    def test_rho7_containment(self):
        """type inherited through sub: needs rho7, invisible classically.

        q2 joins the signature with a membership on the *same* class, so
        the classic homomorphism cannot slide C up to the superclass —
        only the rho_7-derived conjunct satisfies it.
        """
        q1 = ConjunctiveQuery(
            "q1", (A,), (sub(C, U), type_(U, A, T), member(O, C))
        )
        q2 = ConjunctiveQuery("q2", (A,), (type_(C, A, T), member(O, C)))
        assert is_contained(q1, q2).contained
        assert not contained_classic(q1, q2).contained

    def test_rho2_transitivity_containment(self):
        q1 = ConjunctiveQuery("q1", (X,), (sub(X, Y), sub(Y, Z)))
        q2 = ConjunctiveQuery("q2", (X,), (sub(X, Z),))
        assert is_contained(q1, q2).contained

    def test_rho1_type_correctness_containment(self):
        q1 = ConjunctiveQuery("q1", (V := Variable("V"),), (type_(O, A, T), data(O, A, V)))
        q2 = ConjunctiveQuery("q2", (V,), (member(V, T2 := Variable("T2")),))
        assert is_contained(q1, q2).contained

    def test_egd_enables_containment(self):
        """Example-1 style: functionality makes q's two values one."""
        q1 = ConjunctiveQuery(
            "q1",
            (Variable("V1"), Variable("V2")),
            (
                data(O, A, Variable("V1")),
                data(O, A, Variable("V2")),
                funct(A, O),
            ),
        )
        q2 = ConjunctiveQuery(
            "q2",
            (Variable("V"), Variable("V")),
            (data(O, A, Variable("V")),),
        )
        assert is_contained(q1, q2).contained
        assert not contained_classic(q1, q2).contained

    def test_vacuous_containment_on_chase_failure(self):
        q1 = ConjunctiveQuery(
            "q1",
            (),
            (
                data(O, A, Constant("red")),
                data(O, A, Constant("blue")),
                funct(A, O),
            ),
        )
        q2 = ConjunctiveQuery("q2", (), (sub(X, Y),))
        result = is_contained(q1, q2)
        assert result.contained
        assert result.reason is ContainmentReason.CHASE_FAILURE
        assert "unsatisfiable" in result.explain() or "no answers" in result.explain()

    def test_cyclic_q1_decidable(self, example2_query):
        """Containment remains decidable when chase(q1) is infinite."""
        q2 = ConjunctiveQuery("q2", (), (data(X, A, Y), data(Y, A, Z)))
        result = is_contained(example2_query, q2)
        assert result.contained  # the chain provides consecutive data hops

    def test_cyclic_q1_negative_case(self, example2_query):
        q2 = ConjunctiveQuery("q2", (), (funct(A, O),))
        assert not is_contained(example2_query, q2).contained


class TestCheckerMechanics:
    def test_arity_mismatch_raises(self):
        q1 = ConjunctiveQuery("q1", (X,), (member(X, Y),))
        q2 = ConjunctiveQuery("q2", (X, Y), (member(X, Y),))
        with pytest.raises(QueryError):
            is_contained(q1, q2)

    def test_level_bound_override(self, example2_query):
        q2 = ConjunctiveQuery("q2", (), (data(X, A, Y), data(Y, A, Z)))
        small = is_contained(example2_query, q2, level_bound=1)
        full = is_contained(example2_query, q2)
        # At bound 1 the second data hop does not exist yet.
        assert not small.contained
        assert full.contained

    def test_chase_cache_reused(self, joinable_pair):
        q, qq = joinable_pair
        checker = ContainmentChecker()
        first = checker.check(q, qq)
        second = checker.check(q, qq)
        assert first.chase_result is second.chase_result

    def test_saturated_cache_reused_across_bounds(self, joinable_pair):
        q, qq = joinable_pair
        checker = ContainmentChecker()
        r1 = checker.check(q, qq, level_bound=5)
        assert r1.chase_result.saturated
        r2 = checker.check(q, qq, level_bound=50)
        assert r2.chase_result is r1.chase_result

    def test_prefix_restriction_when_cached_bound_larger(self, example2_query):
        q2 = ConjunctiveQuery("q2", (), (data(X, A, Y), data(Y, A, Z)))
        checker = ContainmentChecker()
        big = checker.check(example2_query, q2, level_bound=10)
        assert big.contained
        small = checker.check(example2_query, q2, level_bound=1)
        assert not small.contained  # restricted to the 1-level prefix

    def test_elapsed_positive(self, joinable_pair):
        q, qq = joinable_pair
        assert is_contained(q, qq).elapsed_seconds >= 0

    def test_repr_and_explain(self, joinable_pair):
        q, qq = joinable_pair
        result = is_contained(q, qq)
        assert "⊆" in repr(result)
        assert "homomorphism" in result.explain()


class TestSoundnessRelationClassic:
    """Classic containment implies Sigma_FL containment (never the reverse)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_classic_implies_sigma(self, seed):
        from repro.workloads import QueryGenerator

        gen = QueryGenerator(seed)
        q1, q2 = gen.containment_pair()
        if contained_classic(q1, q2).contained:
            assert is_contained(q1, q2).contained
