"""Unit tests for the shared chase store and the batch containment API."""

import pytest

from repro.containment import ChaseStore, ContainmentChecker, StoreStats
from repro.containment.store import OUTCOME_EXTEND, OUTCOME_FULL, OUTCOME_HIT
from repro.core.atoms import data, member, sub
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.workloads.corpus import (
    EXAMPLE2_QUERY,
    INTRO_JOINABLE_Q,
    INTRO_JOINABLE_QQ,
    PAPER_CONTAINMENT_PAIRS,
)

O, C, D, X, Y, Z, A = (Variable(n) for n in "O C D X Y Z A".split())
book, publication = Constant("book"), Constant("publication")

members = ConjunctiveQuery("members", (O, C), (member(O, C),))
sub_members = ConjunctiveQuery("sub_members", (O, C), (member(O, D), sub(D, C)))
renamed_sub_members = ConjunctiveQuery("rsm", (X, Y), (member(X, Z), sub(Z, Y)))


class TestChaseStore:
    def test_miss_then_hit(self):
        store = ChaseStore()
        run1, outcome1 = store.run_for(sub_members, 5)
        run2, outcome2 = store.run_for(sub_members, 5)
        assert outcome1 == OUTCOME_FULL and outcome2 == OUTCOME_HIT
        assert run1 is run2
        assert store.stats.misses == 1 and store.stats.hits == 1

    def test_open_returns_unchased_session(self):
        store = ChaseStore()
        run, outcome = store.open(sub_members, 5)
        assert outcome == OUTCOME_FULL
        assert run.bound == -1  # open never chases: the caller drives it
        assert store.stats.misses == 1

    def test_open_then_run_for_is_one_entry(self):
        store = ChaseStore()
        run1, _ = store.open(sub_members, 5)
        run1.extend_to(5)
        run2, outcome = store.run_for(sub_members, 5)
        assert run1 is run2 and outcome == OUTCOME_HIT
        assert len(store) == 1

    def test_open_counts_toward_lru_recency(self):
        store = ChaseStore(capacity=2)
        store.run_for(members, 2)
        store.run_for(sub_members, 2)
        store.open(members, 2)  # touch: members becomes most recent
        store.run_for(
            ConjunctiveQuery("third", (O,), (data(O, C, D),)), 2
        )
        assert members in store and sub_members not in store

    def test_larger_bound_extends_in_place(self):
        store = ChaseStore()
        run1, _ = store.run_for(EXAMPLE2_QUERY, 2)
        run2, outcome = store.run_for(EXAMPLE2_QUERY, 6)
        assert run1 is run2
        assert outcome == OUTCOME_EXTEND
        assert store.stats.extensions == 1
        assert run2.bound >= 6

    def test_smaller_bound_is_a_hit(self):
        store = ChaseStore()
        store.run_for(EXAMPLE2_QUERY, 6)
        _, outcome = store.run_for(EXAMPLE2_QUERY, 2)
        assert outcome == OUTCOME_HIT

    def test_alpha_equivalent_queries_share_one_run(self):
        store = ChaseStore()
        run1, _ = store.run_for(sub_members, 5)
        run2, outcome = store.run_for(renamed_sub_members, 5)
        assert run1 is run2 and outcome == OUTCOME_HIT
        assert len(store) == 1

    def test_lru_eviction(self):
        store = ChaseStore(capacity=1)
        store.run_for(members, 3)
        store.run_for(sub_members, 3)  # evicts members
        assert sub_members in store and members not in store
        assert store.stats.evictions == 1
        _, outcome = store.run_for(members, 3)  # must re-chase
        assert outcome == OUTCOME_FULL

    def test_lru_order_is_recency_not_insertion(self):
        store = ChaseStore(capacity=2)
        store.run_for(members, 3)
        store.run_for(sub_members, 3)
        store.run_for(members, 3)  # touch members: sub_members becomes LRU
        store.run_for(EXAMPLE2_QUERY, 2)  # evicts sub_members
        assert members in store and sub_members not in store

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ChaseStore(capacity=0)

    def test_unbounded_capacity(self):
        store = ChaseStore(capacity=None)
        for i, (q1, _, _, _) in enumerate(PAPER_CONTAINMENT_PAIRS):
            store.run_for(q1, 2)
        assert store.stats.evictions == 0

    def test_peek_has_no_counter_effects(self):
        store = ChaseStore()
        assert store.peek(members) is None
        run, _ = store.run_for(members, 3)
        before = store.stats.as_dict()
        assert store.peek(members) is run
        assert store.stats.as_dict() == before

    def test_clear_keeps_counters(self):
        store = ChaseStore()
        store.run_for(members, 3)
        store.clear()
        assert len(store) == 0 and store.stats.misses == 1

    def test_stats_str_and_repr(self):
        store = ChaseStore()
        store.run_for(members, 3)
        assert "1 full" in str(store.stats)
        assert "ChaseStore" in repr(store)

    def test_stats_derived_counts(self):
        stats = StoreStats(hits=2, misses=1, extensions=3, evictions=0)
        assert stats.requests == 6
        assert stats.reuses == 5
        assert stats.full_chases == 1


class TestStoreStatsObservability:
    def test_as_dict_str_round_trip(self):
        stats = StoreStats(hits=2, misses=1, extensions=3, evictions=4, live_entries=1)
        rebuilt = StoreStats(**stats.as_dict())
        assert rebuilt == stats
        assert rebuilt.as_dict() == stats.as_dict()
        text = str(rebuilt)
        # __str__ surfaces every counter the dict carries (live_entries is
        # a gauge, reported via the metrics registry instead).
        assert "6 chase requests" in text
        assert "1 full" in text and "3 extended" in text
        assert "2 hits" in text and "4 evictions" in text
        assert str(stats) == text

    def test_record_methods_mirror_into_registry(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        stats = StoreStats().bind(reg)
        stats.record_miss()
        stats.entry_added()
        stats.record_hit()
        stats.record_extension()
        counters = reg.as_dict()["counters"]
        assert counters["store.requests"] == {
            "outcome=miss": 1,
            "outcome=hit": 1,
            "outcome=extend": 1,
        }
        assert reg.as_dict()["gauges"]["store.live_entries"] == 1

    def test_eviction_decrements_live_entry_gauge(self):
        from repro.obs import MetricsRegistry, Observability

        obs = Observability(metrics=MetricsRegistry())
        store = ChaseStore(capacity=1, obs=obs)
        gauge = obs.metrics.gauge("store.live_entries")
        store.run_for(members, 3)
        assert gauge.value == 1 and store.stats.live_entries == 1
        store.run_for(sub_members, 3)  # evicts members
        assert store.stats.evictions == 1
        assert gauge.value == 1 and store.stats.live_entries == 1
        assert obs.metrics.as_dict()["counters"]["store.evictions"] == 1

    def test_clear_drops_live_entry_gauge_to_zero(self):
        from repro.obs import MetricsRegistry, Observability

        obs = Observability(metrics=MetricsRegistry())
        store = ChaseStore(obs=obs)
        store.run_for(members, 3)
        store.run_for(sub_members, 3)
        assert store.stats.live_entries == 2
        store.clear()
        assert store.stats.live_entries == 0
        assert obs.metrics.gauge("store.live_entries").value == 0
        assert store.stats.misses == 2  # counters survive the clear

    def test_unbound_store_keeps_plain_counters(self):
        store = ChaseStore()
        store.run_for(members, 3)
        assert store.stats.registry is None
        assert store.stats.live_entries == 1


class TestCheckerStoreIntegration:
    def test_chase_outcome_surfaced_on_results(self):
        checker = ContainmentChecker()
        first = checker.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        second = checker.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        assert first.chase_outcome == OUTCOME_FULL
        assert second.chase_outcome == OUTCOME_HIT

    def test_rename_apart_q1_reuses_chase(self):
        checker = ContainmentChecker()
        checker.check(sub_members, members)
        result = checker.check(renamed_sub_members, members)
        assert result.chase_outcome == OUTCOME_HIT
        assert checker.stats.full_chases == 1

    def test_shared_store_across_checkers(self):
        store = ChaseStore()
        a = ContainmentChecker(store=store)
        b = ContainmentChecker(store=store)
        a.check(sub_members, members)
        result = b.check(sub_members, members)
        assert result.chase_outcome == OUTCOME_HIT

    def test_growing_bound_extends_not_rechases(self):
        checker = ContainmentChecker()
        q2 = ConjunctiveQuery("q2", (), (data(X, A, Y), data(Y, A, Z)))
        checker.check(EXAMPLE2_QUERY, q2, level_bound=2)
        grown = checker.check(EXAMPLE2_QUERY, q2, level_bound=8)
        assert grown.chase_outcome == OUTCOME_EXTEND
        assert checker.stats.full_chases == 1


class TestCheckAll:
    def test_matches_per_pair_check(self):
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
        batch = ContainmentChecker().check_all(pairs)
        for (q1, q2, expected, _), result in zip(PAPER_CONTAINMENT_PAIRS, batch):
            solo = ContainmentChecker().check(q1, q2)
            assert result.contained == solo.contained == expected

    def test_results_in_input_order(self):
        pairs = [(sub_members, members), (members, sub_members)]
        results = ContainmentChecker().check_all(pairs)
        assert results[0].q2.name == "members"
        assert results[1].q2.name == "sub_members"

    def test_one_chase_per_distinct_q1(self):
        checker = ContainmentChecker()
        pairs = [
            (sub_members, members),
            (renamed_sub_members, members),  # alpha-equivalent to sub_members
            (sub_members, sub_members),
            (members, members),
        ]
        results = checker.check_all(pairs)
        assert all(r.contained for r in results)
        assert checker.stats.full_chases == 2  # sub_members (shared) + members

    def test_group_chased_to_max_bound_once(self):
        checker = ContainmentChecker()
        small_q2 = ConjunctiveQuery("s", (O, C), (member(O, C),))
        big_q2 = ConjunctiveQuery(
            "b", (O, C), (member(O, C), member(O, D), sub(D, C))
        )
        checker.check_all([(sub_members, small_q2), (sub_members, big_q2)])
        assert checker.stats.full_chases == 1
        assert checker.stats.extensions == 0

    def test_pair_bound_still_restricts_prefix(self):
        """Group-level chasing to the max bound must not leak deeper
        levels into a pair that asked for a smaller bound."""
        checker = ContainmentChecker()
        q2 = ConjunctiveQuery("q2", (), (data(X, A, Y), data(Y, A, Z)))
        # The chase is stored at bound 10 first; the level-1 check must
        # still be answered against the 1-level prefix view only.
        deep = checker.check(EXAMPLE2_QUERY, q2, level_bound=10)
        shallow = checker.check(EXAMPLE2_QUERY, q2, level_bound=1)
        assert deep.contained and not shallow.contained
        assert shallow.chase_outcome == OUTCOME_HIT

    def test_empty_batch(self):
        assert ContainmentChecker().check_all([]) == []

    def test_arity_mismatch_raises(self):
        from repro.core.errors import QueryError

        boolean = ConjunctiveQuery("b", (), (member(O, C),))
        with pytest.raises(QueryError):
            ContainmentChecker().check_all([(members, boolean)])


class TestSchemaCacheIsolation:
    B = Variable("B")
    books = ConjunctiveQuery("books", (B,), (member(B, book),))
    pubs = ConjunctiveQuery("pubs", (B,), (member(B, publication),))
    SCHEMA = (sub(book, publication),)

    def test_different_schemas_do_not_cross_contaminate(self):
        checker = ContainmentChecker()
        with_schema = checker.check(self.books, self.pubs, schema=self.SCHEMA)
        without = checker.check(self.books, self.pubs)
        again_with = checker.check(self.books, self.pubs, schema=self.SCHEMA)
        again_without = checker.check(self.books, self.pubs)
        assert with_schema.contained and again_with.contained
        assert not without.contained and not again_without.contained

    def test_schema_variants_are_distinct_cache_entries(self):
        checker = ContainmentChecker()
        other_schema = (sub(Constant("car"), Constant("vehicle")),)
        checker.check(self.books, self.pubs, schema=self.SCHEMA)
        r2 = checker.check(self.books, self.pubs, schema=other_schema)
        assert not r2.contained
        assert checker.stats.full_chases == 2

    def test_repeated_same_schema_hits_cache(self):
        checker = ContainmentChecker()
        checker.check(self.books, self.pubs, schema=self.SCHEMA)
        repeat = checker.check(self.books, self.pubs, schema=self.SCHEMA)
        assert repeat.chase_outcome == OUTCOME_HIT

    def test_check_all_respects_schema(self):
        checker = ContainmentChecker()
        with_schema = checker.check_all(
            [(self.books, self.pubs)], schema=self.SCHEMA
        )[0]
        without = checker.check_all([(self.books, self.pubs)])[0]
        assert with_schema.contained and not without.contained
