"""Unit tests for Sigma_FL-aware query minimisation."""

import pytest

from repro.containment import ContainmentChecker, is_contained, minimize_query
from repro.core.atoms import data, member, sub, type_
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable

O, C, D, A, T, V, X, Y, Z = (Variable(n) for n in "O C D A T V X Y Z".split())


class TestMinimize:
    def test_rho3_redundancy_removed(self):
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), sub(C, D), member(O, D))
        )
        result = minimize_query(q)
        assert result.reduced
        assert result.minimized.size == 2
        assert member(O, D) in result.removed

    def test_rho2_redundancy_removed(self):
        q = ConjunctiveQuery("q", (X, Z), (sub(X, Y), sub(Y, Z), sub(X, Z)))
        result = minimize_query(q)
        assert result.minimized.size == 2
        assert sub(X, Z) in result.removed

    def test_minimal_query_untouched(self):
        q = ConjunctiveQuery("q", (A,), (type_(C, A, T), member(O, C)))
        result = minimize_query(q)
        assert not result.reduced
        assert result.minimized == q

    def test_classic_duplicate_atom_removed(self):
        """Plain CM redundancy (duplicate up to renaming) also goes."""
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), member(O, D))
        )
        result = minimize_query(q)
        assert result.minimized.size == 1

    def test_head_safety_preserved(self):
        """A conjunct carrying the only occurrence of a head var stays."""
        q = ConjunctiveQuery(
            "q", (V,), (data(O, A, V), member(O, C), sub(C, D), member(O, D))
        )
        result = minimize_query(q)
        assert data(O, A, V) in result.minimized.body
        assert result.minimized.head == (V,)

    def test_minimized_equivalent_to_original(self):
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), sub(C, D), member(O, D))
        )
        minimized = minimize_query(q).minimized
        assert is_contained(q, minimized).contained
        assert is_contained(minimized, q).contained

    def test_idempotent(self):
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), sub(C, D), member(O, D))
        )
        once = minimize_query(q).minimized
        twice = minimize_query(once)
        assert not twice.reduced

    def test_single_atom_query_never_emptied(self):
        q = ConjunctiveQuery("q", (O,), (member(O, C),))
        result = minimize_query(q)
        assert result.minimized.size == 1

    def test_shared_checker_reused(self):
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), sub(C, D), member(O, D))
        )
        checker = ContainmentChecker()
        result = minimize_query(q, checker=checker)
        assert result.reduced
        assert result.checks > 0

    def test_str_reports_reduction(self):
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), sub(C, D), member(O, D))
        )
        assert "->" in str(minimize_query(q))
        minimal = ConjunctiveQuery("p", (O,), (member(O, C),))
        assert "already minimal" in str(minimize_query(minimal))

    def test_cascading_removals(self):
        """Two independent redundancies are both removed."""
        q = ConjunctiveQuery(
            "q",
            (O,),
            (
                member(O, C),
                sub(C, D),
                member(O, D),       # rho3-redundant
                sub(C, Variable("E")),
                sub(D, Variable("E")),
            ),
        )
        result = minimize_query(q)
        assert member(O, D) not in result.minimized.body

    def test_store_stats_surfaced(self):
        """Minimisation reports the chase-store counter deltas its
        candidate checks accrued."""
        q = ConjunctiveQuery(
            "q", (O,), (member(O, C), sub(C, D), member(O, D))
        )
        result = minimize_query(q)
        assert set(result.store_stats) == {
            "hits", "misses", "extensions", "evictions", "live_entries",
            "snapshot_hits", "snapshot_stores",
        }
        assert result.store_stats["misses"] > 0  # at least one fresh chase

    def test_shared_checker_stats_are_deltas(self):
        from repro.containment import ContainmentChecker

        checker = ContainmentChecker()
        q = ConjunctiveQuery("q", (O,), (member(O, C), sub(C, D), member(O, D)))
        first = minimize_query(q, checker=checker)
        second = minimize_query(q, checker=checker)
        # The second run replays the same candidates against a warm store:
        # it must not be charged the first run's misses.
        assert second.store_stats["misses"] <= first.store_stats["misses"]
        assert second.store_stats["hits"] >= first.store_stats["misses"]
