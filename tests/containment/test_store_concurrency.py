"""ChaseStore under concurrent access: sessions, pins, eviction guards."""

from __future__ import annotations

import threading

from repro.containment.bounded import ContainmentChecker, theorem12_bound
from repro.containment.store import OUTCOME_HIT, ChaseStore
from repro.workloads import QueryGenerator


class TestOneKeyHammer:
    def test_eight_threads_extend_one_key(self, joinable_pair):
        """The regression the service layer depends on: 8 threads share one
        canonical-key session without torn runs or double chases."""
        q1, q2 = joinable_pair
        store = ChaseStore()
        bound = theorem12_bound(q1, q2)
        errors = []
        runs = []
        barrier = threading.Barrier(8)

        def hammer(worker):
            try:
                barrier.wait(timeout=30)
                for step in range(10):
                    # Alternate small and large bounds so extensions and
                    # hits interleave across threads.
                    level = 1 + ((worker + step) % bound)
                    with store.session(q1, level) as (run, outcome):
                        if outcome != OUTCOME_HIT:
                            run.extend_to(level)
                        assert (
                            run.covers(level)
                            or run.result().failed
                            or run.saturated
                        )
                        runs.append(run)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        # Every thread worked on the *same* run object: one chase, shared.
        assert len(set(map(id, runs))) == 1
        assert store.stats.misses == 1
        assert len(store) == 1

    def test_concurrent_checkers_share_a_store(self, joinable_pair):
        q1, q2 = joinable_pair
        store = ChaseStore()
        checker = ContainmentChecker(store=store)
        results = [None] * 8
        errors = []

        def work(i):
            try:
                results[i] = checker.check(q1, q2)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert all(r.contained for r in results)
        assert store.stats.misses == 1


class TestEvictionGuard:
    def test_in_use_entry_survives_eviction_pressure(self):
        """An entry pinned by an open session is never evicted, even when
        other threads push the store past capacity."""
        gen = QueryGenerator(5)
        queries = [gen.query() for _ in range(12)]
        store = ChaseStore(capacity=2)
        pinned_q = queries[0]
        entered = threading.Event()
        release = threading.Event()
        errors = []

        def hold_session():
            try:
                with store.session(pinned_q, 1) as (run, _):
                    entered.set()
                    assert release.wait(timeout=30)
                    # The pinned run must still be the stored one.
                    assert store.peek(pinned_q) is run
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        def churn(qs):
            try:
                for q in qs:
                    with store.session(q, 1):
                        pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        holder = threading.Thread(target=hold_session)
        holder.start()
        assert entered.wait(timeout=30)
        churners = [
            threading.Thread(target=churn, args=(queries[1 + 4 * i : 1 + 4 * (i + 1)],))
            for i in range(2)
        ]
        for t in churners:
            t.start()
        for t in churners:
            t.join(timeout=120)
        release.set()
        holder.join(timeout=30)
        assert not errors
        # Once the pin dropped, capacity is enforced again on next touch.
        with store.session(queries[1], 1):
            pass
        assert len(store) <= 3

    def test_clear_keeps_pinned_entries(self, joinable_pair):
        q1, _ = joinable_pair
        store = ChaseStore()
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with store.session(q1, 1) as (run, _):
                entered.set()
                release.wait(timeout=30)

        t = threading.Thread(target=hold)
        t.start()
        assert entered.wait(timeout=30)
        store.clear()
        assert store.peek(q1) is not None  # pinned survivor
        release.set()
        t.join(timeout=30)

    def test_covers_is_a_pure_read(self, joinable_pair):
        q1, _ = joinable_pair
        store = ChaseStore()
        assert store.covers(q1, 1) is False
        store.run_for(q1, 1)
        hits_before = store.stats.hits
        assert store.covers(q1, 1) is True
        assert store.covers(q1, 10**6) in (True, False)
        assert store.stats.hits == hits_before  # covers() counted nothing
