"""The dense executor against the baseline search, case by case.

Every test here asserts the kernel's core contract: for a supported
(index, filter) pair, ``kernel="dense"`` yields exactly the baseline's
solution set — and the observable side channels (node counts, governor
ticks, fallback counters) behave as documented.
"""

from __future__ import annotations

import pytest

from repro.core.atoms import data, funct, member, sub, type_
from repro.core.substitution import Substitution
from repro.core.terms import Constant, Variable
from repro.datalog.index import FactIndex
from repro.datalog.matching import SearchStats, match_conjunction, match_conjunction_delta
from repro.governance.budget import ExecutionBudget, Governor
from repro.kernel.search import dense_supported, kernel_match_conjunction

X, Y, Z, W = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
A, B, C, D = (Constant(n) for n in "abcd")


def _solutions(atoms, index, kernel, **kwargs):
    return set(match_conjunction(atoms, index, kernel=kernel, **kwargs))


def _index():
    return FactIndex(
        [
            member(A, C),
            member(B, C),
            member(A, D),
            sub(C, D),
            sub(D, D),
            data(A, B, C),
            data(A, B, B),
            funct(B, C),
        ]
    )


EQUIVALENCE_CASES = [
    pytest.param([member(X, Y)], id="single-atom"),
    pytest.param([member(X, Y), sub(Y, Z)], id="two-atom-join"),
    pytest.param([member(X, C)], id="constant-position"),
    pytest.param([sub(Y, Y)], id="repeated-var-in-atom"),
    pytest.param([data(X, Y, Y)], id="repeated-var-later-position"),
    pytest.param([member(X, Y), sub(Y, Y), data(X, Z, W)], id="three-atoms"),
    pytest.param([member(X, Y), member(Z, Y), sub(Y, W)], id="diamond"),
    pytest.param([type_(X, Y, Z)], id="empty-relation"),
    pytest.param([], id="empty-conjunction"),
]


class TestEquivalence:
    @pytest.mark.parametrize("atoms", EQUIVALENCE_CASES)
    @pytest.mark.parametrize("reorder", [True, False])
    def test_same_solution_set(self, atoms, reorder):
        index = _index()
        assert _solutions(atoms, index, "dense", reorder=reorder) == _solutions(
            atoms, index, "baseline", reorder=reorder
        )

    def test_seeded_base_substitution(self):
        index = _index()
        base = Substitution({X: A})
        atoms = [member(X, Y), sub(Y, Z)]
        dense = set(match_conjunction(atoms, index, base, kernel="dense"))
        baseline = set(match_conjunction(atoms, index, base, kernel="baseline"))
        assert dense == baseline
        assert all(s[X] == A for s in dense)

    def test_solutions_carry_full_domain(self):
        index = _index()
        (sol,) = set(match_conjunction([funct(X, Y)], index, kernel="dense"))
        assert sol.domain() == {X, Y}
        assert sol[X] == B and sol[Y] == C

    def test_auto_uses_the_kernel_here(self):
        index = _index()
        stats = SearchStats()
        list(match_conjunction([member(X, Y)], index, kernel="auto", stats=stats))
        assert stats.kernel_searches == 1
        assert stats.kernel_fallbacks == 0

    def test_none_defaults_to_baseline(self):
        # Module-level callers keep the pinned baseline node counts.
        index = _index()
        stats = SearchStats()
        list(match_conjunction([member(X, Y)], index, stats=stats))
        assert stats.kernel_searches == 0
        assert stats.kernel_nodes == 0


class TestStatsParity:
    def test_node_and_solution_counts_match_baseline(self):
        index = _index()
        atoms = [member(X, Y), sub(Y, Z), data(X, W, W)]
        dense, baseline = SearchStats(), SearchStats()
        list(match_conjunction(atoms, index, kernel="dense", stats=dense))
        list(match_conjunction(atoms, index, kernel="baseline", stats=baseline))
        assert dense.nodes == baseline.nodes
        assert dense.solutions == baseline.solutions
        assert dense.backtracks == baseline.backtracks

    def test_kernel_counters_accumulate(self):
        index = _index()
        stats = SearchStats()
        list(match_conjunction([member(X, Y), sub(Y, Z)], index, kernel="dense", stats=stats))
        assert stats.kernel_nodes == stats.nodes > 0
        assert stats.bitset_ops > 0
        assert stats.intern_symbols > 0  # first sync interned the index

    def test_kernel_fields_hidden_from_baseline_as_dict(self):
        stats = SearchStats()
        index = _index()
        list(match_conjunction([member(X, Y)], index, kernel="baseline", stats=stats))
        assert set(stats.as_dict()) == {"nodes", "backtracks", "solutions"}

    def test_kernel_fields_present_when_dense_ran(self):
        stats = SearchStats()
        index = _index()
        list(match_conjunction([member(X, Y)], index, kernel="dense", stats=stats))
        as_dict = stats.as_dict()
        assert as_dict["kernel_nodes"] == stats.kernel_nodes
        assert as_dict["kernel_searches"] == 1


class _RecordingGovernor:
    """Duck-typed governor that records every (amortised) tick site."""

    def __init__(self):
        self.sites = []

    def tick(self, site):
        self.sites.append(site)


class TestGovernor:
    def test_tick_parity_with_baseline(self):
        index = _index()
        atoms = [member(X, Y), sub(Y, Z)]
        ticks = {}
        for kernel in ("dense", "baseline"):
            governor = _RecordingGovernor()
            list(match_conjunction(atoms, index, kernel=kernel, governor=governor))
            ticks[kernel] = len(governor.sites)
        assert ticks["dense"] == ticks["baseline"] > 0

    def test_one_tick_per_node_at_the_callers_site(self):
        index = _index()
        governor = _RecordingGovernor()
        stats = SearchStats()
        list(
            kernel_match_conjunction(
                [member(X, Y)],
                index,
                governor=governor,
                governor_site="chase.match",
                stats=stats,
            )
        )
        assert governor.sites == ["chase.match"] * stats.nodes

    def test_real_governor_deadline_interrupts_the_kernel(self):
        from repro.core.errors import BudgetExceeded

        index = _index()
        governor = Governor(ExecutionBudget(deadline_seconds=0.0))
        governor.clock = lambda: governor.started_at + 1.0
        with pytest.raises(BudgetExceeded):
            for _ in range(64):  # past the 1/32 amortisation window
                list(
                    match_conjunction(
                        [member(X, Y)], index, kernel="dense", governor=governor
                    )
                )


class TestFallback:
    def test_term_filter_is_unsupported(self):
        assert not dense_supported(_index(), term_filter=lambda v, t: True)

    def test_unsupported_index_type(self):
        assert not dense_supported(object())

    def test_term_filter_falls_back_and_counts(self):
        index = _index()
        stats = SearchStats()
        dense = set(
            match_conjunction(
                [member(X, Y)],
                index,
                kernel="dense",
                term_filter=lambda var, term: term != A,
                stats=stats,
            )
        )
        baseline = set(
            match_conjunction(
                [member(X, Y)],
                index,
                kernel="baseline",
                term_filter=lambda var, term: term != A,
            )
        )
        assert dense == baseline
        assert stats.kernel_fallbacks == 1
        assert stats.kernel_searches == 0

    def test_invalid_kernel_name_rejected(self):
        with pytest.raises(ValueError):
            list(match_conjunction([member(X, Y)], _index(), kernel="turbo"))


class TestDeltaPath:
    def test_delta_restriction_matches_baseline(self):
        index = _index()
        atoms = [member(X, Y), sub(Y, Z)]
        delta = [sub(D, D)]
        dense = set(
            match_conjunction_delta(atoms, index, delta, kernel="dense")
        )
        baseline = set(
            match_conjunction_delta(atoms, index, delta, kernel="baseline")
        )
        assert dense == baseline
        # Every solution really touches the delta fact.
        assert all(s[Y] == D and s[Z] == D for s in dense)

    def test_required_fact_stays_equivalent(self):
        index = _index()
        atoms = [member(X, Y), sub(Y, Z)]
        dense = set(
            match_conjunction(
                atoms, index, required_fact=sub(C, D), kernel="dense"
            )
        )
        baseline = set(
            match_conjunction(
                atoms, index, required_fact=sub(C, D), kernel="baseline"
            )
        )
        assert dense == baseline


class TestLevelPrefixViews:
    def _instance(self):
        from repro.chase.instance import ChaseInstance

        instance = ChaseInstance([member(A, C), sub(C, D)])
        instance.add(member(B, C), level=1, rule="r", parents=())
        instance.add(sub(D, D), level=2, rule="r", parents=())
        return instance

    def test_view_is_supported_and_equivalent(self):
        instance = self._instance()
        for bound in (0, 1, 2):
            view = instance.up_to_level(bound)
            assert dense_supported(view)
            atoms = [member(X, Y), sub(Y, Z)]
            assert _solutions(atoms, view, "dense") == _solutions(
                atoms, view, "baseline"
            )

    def test_bound_zero_hides_later_levels(self):
        view = self._instance().up_to_level(0)
        sols = _solutions([member(X, Y)], view, "dense")
        assert sols == {Substitution({X: A, Y: C})}
