"""Join planning: ordering heuristic and position classification."""

from __future__ import annotations

from repro.core.terms import Constant, Variable
from repro.core.atoms import data, member, sub, type_
from repro.datalog.index import FactIndex
from repro.datalog.matching import order_by_selectivity
from repro.kernel.planner import order_atoms, plan_conjunction

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def _counts(**counts):
    return lambda predicate: counts.get(predicate, 0)


class TestOrderAtoms:
    def test_smaller_relation_first(self):
        atoms = [member(X, Y), sub(Y, Z)]
        ordered = order_atoms(atoms, _counts(member=100, sub=2))
        assert ordered[0].predicate == "sub"

    def test_bound_positions_beat_size(self):
        # After picking the tiny data atom, member(X, Y) has one bound
        # position and wins over the smaller but fully unbound sub atom.
        atoms = [data(X, Variable("A"), Variable("V")), member(X, Y), sub(Y, Z)]
        ordered = order_atoms(atoms, _counts(data=1, member=50, sub=2))
        assert [a.predicate for a in ordered] == ["data", "member", "sub"]

    def test_seed_variables_count_as_bound(self):
        atoms = [member(X, Y), sub(Z, Y)]
        ordered = order_atoms(atoms, _counts(member=10, sub=10), {X})
        assert ordered[0].predicate == "member"

    def test_baseline_order_by_selectivity_delegates_here(self):
        # The baseline search and the kernel must explore the same join
        # order; order_by_selectivity is the same heuristic by
        # delegation, so spot-check the outputs agree on a real index.
        index = FactIndex(
            [member(Constant("o"), Constant("c")), sub(Constant("c"), Constant("d")),
             sub(Constant("d"), Constant("e"))]
        )
        atoms = [member(X, Y), sub(Y, Z)]
        assert order_by_selectivity(atoms, index) == order_atoms(
            atoms, index.count
        )


class TestPlanConjunction:
    def test_positions_classified(self):
        plan = plan_conjunction(
            [member(X, Constant("c")), data(X, Y, Y)], reorder=False
        )
        first, second = plan.steps
        # member(X, "c"): X free at 0, the constant at 1.
        assert first.frees == ((0, plan.slot_of[X]),)
        assert first.consts == ((1, Constant("c")),)
        assert first.bounds == first.sames == ()
        # data(X, Y, Y): X bound by step one, Y free at 1, repeated at 2.
        assert second.bounds == ((0, plan.slot_of[X]),)
        assert second.frees == ((1, plan.slot_of[Y]),)
        assert second.sames == ((2, plan.slot_of[Y]),)

    def test_seed_variables_get_lowest_slots(self):
        plan = plan_conjunction(
            [member(X, Y)], bound_vars=[Z, X], reorder=False
        )
        assert plan.slot_of[Z] == 0
        assert plan.slot_of[X] == 1
        # A seeded variable's occurrence is a bound position, not free.
        assert plan.steps[0].bounds == ((0, 1),)
        assert plan.n_slots == 3

    def test_cross_atom_repeat_is_bound_not_same(self):
        plan = plan_conjunction([sub(X, Y), sub(Y, Z)], reorder=False)
        second = plan.steps[1]
        assert second.bounds == ((0, plan.slot_of[Y]),)
        assert second.sames == ()

    def test_reorder_false_keeps_given_order(self):
        atoms = [member(X, Y), sub(Y, Z)]
        plan = plan_conjunction(
            atoms, count_of=_counts(member=100, sub=1), reorder=False
        )
        assert plan.ordered == tuple(atoms)

    def test_reorder_true_applies_heuristic(self):
        atoms = [member(X, Y), sub(Y, Z)]
        plan = plan_conjunction(
            atoms, count_of=_counts(member=100, sub=1), reorder=True
        )
        assert plan.ordered[0].predicate == "sub"

    def test_empty_conjunction(self):
        plan = plan_conjunction([], reorder=True)
        assert plan.steps == ()
        assert plan.n_slots == 0

    def test_ground_atom_is_all_consts(self):
        plan = plan_conjunction(
            [type_(Constant("c"), Constant("a"), Constant("t"))], reorder=False
        )
        step = plan.steps[0]
        assert len(step.consts) == 3
        assert step.frees == step.bounds == step.sames == ()
