"""TermArena interning and PredicateTable columnar storage."""

from __future__ import annotations

from repro.core.atoms import member, type_
from repro.core.terms import Constant, Null, TermArena, Variable
from repro.kernel.columns import PredicateTable, pattern_key, table_key


class TestTermArena:
    def test_intern_roundtrips(self):
        arena = TermArena()
        terms = [Constant("a"), Variable("X"), Null(3)]
        ids = [arena.intern(t) for t in terms]
        assert [arena.term(i) for i in ids] == terms

    def test_ids_are_contiguous_and_stable(self):
        arena = TermArena()
        first = arena.intern(Constant("a"))
        second = arena.intern(Constant("b"))
        assert (first, second) == (0, 1)
        # Re-interning never mints a new id.
        assert arena.intern(Constant("a")) == first
        assert len(arena) == 2

    def test_id_of_unknown_term_is_none(self):
        arena = TermArena()
        assert arena.id_of(Constant("missing")) is None
        arena.intern(Constant("present"))
        assert arena.id_of(Constant("present")) == 0

    def test_intern_many_matches_single_interning(self):
        arena = TermArena()
        args = (Constant("a"), Variable("X"), Constant("a"))
        ids = arena.intern_many(args)
        assert ids == [arena.intern(t) for t in args]

    def test_kind_counts(self):
        arena = TermArena()
        arena.intern_many((Constant("a"), Constant("b"), Variable("X"), Null(1)))
        counts = arena.kind_counts()
        assert counts["constants"] == 2
        assert counts["variables"] == 1
        assert counts["nulls"] == 1

    def test_contains(self):
        arena = TermArena()
        arena.intern(Constant("a"))
        assert Constant("a") in arena
        assert Constant("b") not in arena


class TestPredicateTable:
    def _table(self):
        arena = TermArena()
        table = PredicateTable("member", 2)
        atoms = [
            member(Constant("o1"), Constant("c")),
            member(Constant("o2"), Constant("c")),
            member(Constant("o1"), Constant("d")),
        ]
        for atom in atoms:
            table.append(arena.intern_many(atom.args), atom)
        return arena, table, atoms

    def test_rows_and_columns(self):
        arena, table, atoms = self._table()
        assert table.n_rows == len(table) == 3
        assert table.atoms == atoms
        # Column 0 holds the first argument of every row, as ids.
        assert [arena.term(i) for i in table.columns[0]] == [
            a.args[0] for a in atoms
        ]

    def test_all_rows_mask_covers_every_row(self):
        _, table, _ = self._table()
        assert table.all_rows == 0b111

    def test_postings_are_per_position_bitsets(self):
        arena, table, _ = self._table()
        o1 = arena.id_of(Constant("o1"))
        c = arena.id_of(Constant("c"))
        assert table.posting(0, o1) == 0b101  # rows 0 and 2
        assert table.posting(1, c) == 0b011  # rows 0 and 1
        # Intersection selects exactly member(o1, c).
        assert table.posting(0, o1) & table.posting(1, c) == 0b001

    def test_posting_for_unseen_value_is_empty(self):
        arena, table, _ = self._table()
        assert table.posting(0, arena.intern(Constant("nowhere"))) == 0

    def test_row_of_maps_atoms_back_to_rows(self):
        _, table, atoms = self._table()
        assert [table.row_of[a] for a in atoms] == [0, 1, 2]


class TestKeys:
    def test_table_key_uses_predicate_and_arity(self):
        atom = type_(Constant("c"), Constant("a"), Constant("t"))
        assert table_key(atom) == ("type", 3)
        assert pattern_key("type", 3) == ("type", 3)
