"""Dense kernel ≡ baseline: property-based and corpus-wide equivalence.

The satellite contract of the kernel PR: the dense executor and the
baseline backtracking search return *identical solution sets* — on the
paper's worked examples, on the E10 mixed corpus, and on randomly
generated workloads — and governed runs that get interrupted degrade to
UNKNOWN identically under both kernels.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.containment.bounded import ContainmentChecker, theorem12_bound
from repro.containment.result import ContainmentReason, Decision
from repro.core.substitution import Substitution
from repro.datalog.index import FactIndex
from repro.datalog.matching import match_conjunction
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.governance.budget import ExecutionBudget
from repro.governance.faults import Fault
from repro.homomorphism.search import all_homomorphisms
from repro.workloads.corpus import PAPER_CONTAINMENT_PAIRS, PAPER_QUERIES
from repro.workloads.query_gen import QueryGenerator

from tests.property.strategies import conjunctive_queries, ground_pfl_atoms

SETTINGS = settings(max_examples=25, deadline=None)


def _solution_set(atoms, index, kernel, base=Substitution.EMPTY, **kwargs):
    return set(match_conjunction(atoms, index, base, kernel=kernel, **kwargs))


class TestRandomWorkloads:
    @SETTINGS
    @given(
        facts=st.lists(ground_pfl_atoms(), max_size=30),
        query=conjunctive_queries(max_atoms=4),
        reorder=st.booleans(),
    )
    def test_match_conjunction_solution_sets_agree(self, facts, query, reorder):
        index = FactIndex(facts)
        assert _solution_set(
            query.body, index, "dense", reorder=reorder
        ) == _solution_set(query.body, index, "baseline", reorder=reorder)

    @SETTINGS
    @given(
        facts=st.lists(ground_pfl_atoms(), max_size=30),
        query=conjunctive_queries(max_atoms=3),
    )
    def test_all_homomorphisms_agree(self, facts, query):
        index = FactIndex(facts)
        dense = set(all_homomorphisms(query, index, kernel="dense"))
        baseline = set(all_homomorphisms(query, index, kernel="baseline"))
        assert dense == baseline


class TestChasedInstances:
    @pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: q.name)
    def test_solutions_over_chased_paper_prefixes(self, query):
        # Enumerate every paper query over every paper query's chased
        # canonical database — nulls included, prefix views included.
        checker = ContainmentChecker()
        for other in PAPER_QUERIES:
            bound = min(theorem12_bound(other, query), 6)
            run, _ = checker.store.run_for(other, bound)
            view = run.instance.up_to_level(bound)
            dense = set(all_homomorphisms(query, view, kernel="dense"))
            baseline = set(all_homomorphisms(query, view, kernel="baseline"))
            assert dense == baseline


class TestVerdictParity:
    @pytest.mark.parametrize("anytime", [True, False], ids=["anytime", "monolithic"])
    def test_paper_pairs(self, anytime):
        dense = ContainmentChecker(anytime=anytime, kernel="dense")
        baseline = ContainmentChecker(anytime=anytime, kernel="baseline")
        for q1, q2, expected, _ in PAPER_CONTAINMENT_PAIRS:
            for checker in (dense, baseline):
                result = checker.check(q1, q2)
                assert result.contained == expected
                assert not result.unknown

    def test_e10_style_corpus(self):
        # The E10 mixed corpus recipe: paper pairs plus generated pairs
        # from the same seed the experiment uses.
        gen = QueryGenerator(17)
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
        pairs += [gen.containment_pair() for _ in range(10)]
        dense = ContainmentChecker(kernel="dense")
        baseline = ContainmentChecker(kernel="baseline")
        for q1, q2 in pairs:
            r_dense = dense.check(q1, q2)
            r_base = baseline.check(q1, q2)
            assert r_dense.decision == r_base.decision
            assert r_dense.contained == r_base.contained

    def test_explanations_verify_under_dense(self):
        checker = ContainmentChecker(kernel="dense")
        for q1, q2, expected, _ in PAPER_CONTAINMENT_PAIRS:
            result = checker.check(q1, q2, explain=True)
            assert result.contained == expected
            assert result.verify()


class TestInterruptedRuns:
    DEADLINE = 0.1
    SLOW_PROBE = (
        Fault(
            site="containment.probe", at=1, kind="slow", seconds=0.12, repeat=True
        ),
    )

    @pytest.mark.parametrize("kernel", ["dense", "baseline"])
    def test_exhaustion_degrades_to_unknown_identically(self, kernel):
        # A negative pair (no early witness) governed by a deadline the
        # fault harness guarantees to blow: both kernels must give the
        # same UNKNOWN with the same reason — never a flipped verdict.
        q1, q2 = next(
            (a, b) for a, b, sigma, _ in PAPER_CONTAINMENT_PAIRS if not sigma
        )
        checker = ContainmentChecker(faults=self.SLOW_PROBE, kernel=kernel)
        result = checker.check(
            q1, q2, budget=ExecutionBudget(deadline_seconds=self.DEADLINE)
        )
        assert result.decision is Decision.UNKNOWN
        assert result.reason is ContainmentReason.BUDGET_EXHAUSTED
        assert result.budget_report is not None
        assert result.budget_report.exhausted == "deadline"

    def test_unlimited_budget_decides_under_both(self):
        for kernel in ("dense", "baseline"):
            checker = ContainmentChecker(kernel=kernel)
            for q1, q2, expected, _ in PAPER_CONTAINMENT_PAIRS[:2]:
                result = checker.check(
                    q1, q2, budget=ExecutionBudget.unlimited()
                )
                assert not result.unknown
                assert result.contained == expected
