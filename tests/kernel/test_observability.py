"""Kernel counters: SearchStats → checker telemetry → Engine.stats/serve."""

from __future__ import annotations

import json

from repro.api import Engine
from repro.containment.bounded import ContainmentChecker
from repro.kernel.telemetry import KernelTelemetry
from repro.obs import MetricsRegistry, Observability
from repro.workloads.corpus import INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ

KERNEL_KEYS = {
    "kernel_nodes",
    "bitset_ops",
    "intern_symbols",
    "searches",
    "fallbacks",
}


class TestKernelTelemetry:
    def test_absorb_folds_search_stats(self):
        from repro.datalog.matching import SearchStats

        telemetry = KernelTelemetry()
        stats = SearchStats()
        stats.kernel_nodes = 5
        stats.bitset_ops = 7
        stats.intern_symbols = 3
        stats.kernel_searches = 2
        stats.kernel_fallbacks = 1
        telemetry.absorb(stats)
        telemetry.absorb(stats)
        assert telemetry.as_dict() == {
            "kernel_nodes": 10,
            "bitset_ops": 14,
            "intern_symbols": 6,
            "searches": 4,
            "fallbacks": 2,
        }


class TestCheckerAggregation:
    def test_dense_checker_accumulates(self):
        checker = ContainmentChecker(kernel="dense")
        checker.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        telemetry = checker.kernel_stats
        assert telemetry.searches > 0
        assert telemetry.kernel_nodes > 0
        assert telemetry.bitset_ops > 0
        assert telemetry.intern_symbols > 0

    def test_baseline_checker_stays_silent(self):
        checker = ContainmentChecker(kernel="baseline")
        checker.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        assert checker.kernel_stats.as_dict() == dict.fromkeys(KERNEL_KEYS, 0)

    def test_metrics_counters_emitted(self):
        obs = Observability(metrics=MetricsRegistry())
        checker = ContainmentChecker(obs=obs, kernel="dense")
        checker.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        counters = obs.metrics.as_dict()["counters"]
        assert "hom.kernel_nodes" in counters
        assert "hom.bitset_ops" in counters
        assert "kernel.intern_symbols" in counters

    def test_baseline_emits_no_kernel_metrics(self):
        obs = Observability(metrics=MetricsRegistry())
        checker = ContainmentChecker(obs=obs, kernel="baseline")
        checker.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
        counters = obs.metrics.as_dict()["counters"]
        assert "hom.kernel_nodes" not in counters
        assert "kernel.intern_symbols" not in counters


class TestEngineSurface:
    def test_engine_stats_has_a_kernel_section(self):
        with Engine() as engine:  # kernel="auto" is the default
            engine.check(INTRO_JOINABLE_Q, INTRO_JOINABLE_QQ)
            stats = engine.stats()
        assert set(stats["kernel"]) == KERNEL_KEYS
        assert stats["kernel"]["searches"] > 0
        assert stats["kernel"]["kernel_nodes"] > 0

    def test_serve_stats_op_carries_the_section(self):
        from repro.flogic.printer import query_to_flogic
        from repro.serve import ConnectionState, ContainmentServer

        with ContainmentServer(1) as server:
            conn = ConnectionState()
            check = {
                "id": 0,
                "op": "check",
                "q1": query_to_flogic(INTRO_JOINABLE_Q),
                "q2": query_to_flogic(INTRO_JOINABLE_QQ),
            }
            assert server.handle_line(json.dumps(check), conn)["ok"] is True
            response = server.handle_line(
                json.dumps({"id": 1, "op": "stats"}), conn
            )
        assert response["ok"] is True
        assert set(response["stats"]["kernel"]) == KERNEL_KEYS
        assert response["stats"]["kernel"]["searches"] > 0
