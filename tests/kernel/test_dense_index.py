"""DenseIndex: lazy mirroring, generation sync, rebuilds, level masks."""

from __future__ import annotations

import pickle

from repro.chase.instance import ChaseInstance
from repro.core.atoms import member, sub
from repro.core.terms import Constant
from repro.datalog.index import FactIndex
from repro.datalog.matching import SearchStats
from repro.kernel.index import DenseIndex, dense_index_for

A, B, C, D = (Constant(n) for n in "abcd")


class TestMirrorLifecycle:
    def test_mirror_cached_on_the_index(self):
        index = FactIndex([member(A, B)])
        dense = dense_index_for(index)
        assert index.dense is dense
        assert dense_index_for(index) is dense

    def test_sync_is_noop_when_generation_unchanged(self):
        index = FactIndex([member(A, B)])
        dense = dense_index_for(index)
        assert dense.sync() is False
        assert dense.synced_generation == index.generation

    def test_monotone_adds_append_rows(self):
        index = FactIndex([member(A, B)])
        dense = dense_index_for(index)
        table = dense.table("member", 2)
        index.add(member(C, B))
        assert dense.sync() is True
        # Monotone growth extends the same table in place.
        assert dense.table("member", 2) is table
        assert table.n_rows == 2

    def test_discard_triggers_table_rebuild(self):
        index = FactIndex([member(A, B), member(C, B)])
        dense = dense_index_for(index)
        old_table = dense.table("member", 2)
        ident_a = dense.arena.id_of(A)
        index.discard(member(A, B))
        dense.sync()
        new_table = dense.table("member", 2)
        assert new_table is not old_table
        assert new_table.n_rows == 1
        assert new_table.atoms == [member(C, B)]
        # The arena survives a rebuild: symbol ids stay stable.
        assert dense.arena.id_of(A) == ident_a

    def test_emptied_predicate_drops_its_table(self):
        index = FactIndex([member(A, B), sub(C, D)])
        dense = dense_index_for(index)
        index.discard(sub(C, D))
        dense.sync()
        assert dense.table("sub", 2) is None
        assert dense.table("member", 2) is not None

    def test_mixed_arities_get_separate_tables(self):
        from repro.core.atoms import Atom

        index = FactIndex()
        index.add(Atom("p", (A,)))
        index.add(Atom("p", (A, B)))
        dense = dense_index_for(index)
        assert dense.table("p", 1).n_rows == 1
        assert dense.table("p", 2).n_rows == 1

    def test_sync_counts_newly_interned_symbols(self):
        index = FactIndex([member(A, B)])
        stats = SearchStats()
        dense = dense_index_for(index, stats)
        assert stats.intern_symbols == 2
        index.add(member(A, C))  # one genuinely new symbol
        dense.sync(stats)
        assert stats.intern_symbols == 3

    def test_sync_clears_the_plan_cache(self):
        index = FactIndex([member(A, B)])
        dense = dense_index_for(index)
        dense.plan_cache["sentinel"] = object()
        index.add(member(C, D))
        dense.sync()
        assert not dense.plan_cache

    def test_pickled_index_drops_the_mirror(self):
        index = FactIndex([member(A, B)])
        dense_index_for(index)
        clone = pickle.loads(pickle.dumps(index))
        assert clone.dense is None
        # And the clone can grow a fresh mirror of its own.
        assert dense_index_for(clone).table("member", 2).n_rows == 1


class TestLevelMasks:
    def _instance(self):
        instance = ChaseInstance([member(A, B)])
        instance.add(member(C, B), level=1, rule="r", parents=())
        instance.add(sub(B, D), level=2, rule="r", parents=())
        return instance

    def test_masks_filter_rows_by_level(self):
        instance = self._instance()
        dense = dense_index_for(instance.index)
        view = instance.up_to_level(1)
        masks = dense.level_masks(view)
        member_table = dense.table("member", 2)
        visible = {
            atom
            for row, atom in enumerate(member_table.atoms)
            if masks[("member", 2)] >> row & 1
        }
        # Row order follows set iteration of the source index, so compare
        # as a set: exactly the two level-<=1 facts are visible.
        assert visible == {member(A, B), member(C, B)}
        assert masks[("sub", 2)] == 0  # level 2 is beyond the bound

    def test_masks_cached_per_view_and_generation(self):
        instance = self._instance()
        dense = dense_index_for(instance.index)
        view = instance.up_to_level(1)
        first = dense.level_masks(view)
        assert dense.level_masks(view) is first
        # A sync with new facts invalidates the cached masks.
        instance.add(member(D, B), level=1, rule="r", parents=())
        dense.sync()
        second = dense.level_masks(view)
        assert second is not first
        assert second[("member", 2)].bit_count() == 3

    def test_repr_summarises(self):
        index = FactIndex([member(A, B)])
        assert "1 tables" in repr(dense_index_for(index))
