"""Tests for the dense int-interned columnar kernel (repro.kernel)."""
