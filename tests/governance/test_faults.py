"""The deterministic fault-injection harness.

Faults fire at exact site-visit counts, so a fault plan plus a
deterministic workload yields a reproducible failure — the property the
governed-degradation tests in :mod:`tests.governance.test_governed_containment`
build on.
"""

import time

import pytest

from repro.core.errors import ReproError
from repro.governance.faults import (
    KIND_ALLOC,
    KIND_RAISE,
    KIND_SLOW,
    Fault,
    FaultInjector,
    InjectedFault,
)


class TestFiringSchedule:
    def test_fires_exactly_at_nth_visit(self):
        injector = FaultInjector([Fault(site="chase.round", at=3)])
        injector.fire("chase.round")
        injector.fire("chase.round")
        with pytest.raises(InjectedFault):
            injector.fire("chase.round")
        # One-shot: the fourth visit passes.
        injector.fire("chase.round")
        assert [entry[:2] for entry in injector.fired] == [("chase.round", 3)]

    def test_repeat_fires_from_at_onwards(self):
        injector = FaultInjector(
            [Fault(site="probe", at=2, kind=KIND_SLOW, seconds=0.0, repeat=True)]
        )
        injector.fire("probe")
        injector.fire("probe")
        injector.fire("probe")
        assert [count for _, count, _ in injector.fired] == [2, 3]

    def test_other_sites_unaffected(self):
        injector = FaultInjector([Fault(site="chase.round", at=1)])
        injector.fire("containment.probe")
        injector.fire("hom.search")
        assert injector.fired == []

    def test_determinism_same_plan_same_log(self):
        plan = [
            Fault(site="a", at=2),
            Fault(site="b", at=1, kind=KIND_SLOW, seconds=0.0, repeat=True),
        ]
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for site in ["a", "b", "a", "b", "a"]:
                try:
                    injector.fire(site)
                except InjectedFault:
                    pass
            logs.append(list(injector.fired))
        assert logs[0] == logs[1]


class TestFaultKinds:
    def test_slow_fault_sleeps(self):
        injector = FaultInjector(
            [Fault(site="s", at=1, kind=KIND_SLOW, seconds=0.02)]
        )
        t0 = time.perf_counter()
        injector.fire("s")
        assert time.perf_counter() - t0 >= 0.02

    def test_alloc_fault_retains_memory(self):
        injector = FaultInjector(
            [Fault(site="s", at=1, kind=KIND_ALLOC, bytes=4096)]
        )
        injector.fire("s")
        assert sum(len(chunk) for chunk in injector.retained) == 4096

    def test_raise_fault_is_not_a_repro_error(self):
        # Injected crashes must look like *unexpected* failures: recovery
        # code that catches ReproError is not allowed to swallow them.
        assert not issubclass(InjectedFault, ReproError)
        assert issubclass(InjectedFault, RuntimeError)
        injector = FaultInjector([Fault(site="s", at=1, kind=KIND_RAISE)])
        with pytest.raises(InjectedFault):
            injector.fire("s")

    def test_plan_is_reusable_across_injectors(self):
        # Frozen Fault + per-injector counters: shipping the same plan to
        # several workers gives each an independent schedule.
        plan = (Fault(site="s", at=1),)
        for _ in range(3):
            with pytest.raises(InjectedFault):
                FaultInjector(plan).fire("s")
