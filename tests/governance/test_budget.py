"""Unit tests for the governance primitives: budgets, scopes, governors.

A fake clock drives every deadline assertion, so these tests are exact
and instant — no sleeping, no wall-clock slack.
"""

import pytest

from repro.chase.engine import chase
from repro.core.errors import (
    BudgetExceeded,
    ChaseBudgetExceeded,
    ExecutionCancelled,
    ExecutionInterrupted,
    ReproError,
)
from repro.governance.budget import (
    MEMORY_OVERHEAD_FACTOR,
    TICK_MASK,
    BudgetReport,
    CancelScope,
    ExecutionBudget,
    Governor,
    approx_instance_bytes,
)
from repro.obs import MetricsRegistry, Observability
from repro.workloads.corpus import INTRO_MANDATORY_Q


class FakeClock:
    """A manually advanced clock standing in for time.perf_counter."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestExecutionBudget:
    def test_unlimited_has_no_limits(self):
        budget = ExecutionBudget.unlimited()
        assert budget.is_unlimited
        assert budget.deadline_seconds is None
        assert budget.max_facts is None

    def test_any_limit_makes_it_limited(self):
        assert not ExecutionBudget(deadline_seconds=1.0).is_unlimited
        assert not ExecutionBudget(max_facts=10).is_unlimited
        assert not ExecutionBudget(max_memory_bytes=1).is_unlimited
        assert not ExecutionBudget(max_steps=5).is_unlimited

    def test_budget_is_immutable_and_hashable(self):
        budget = ExecutionBudget(max_facts=10)
        with pytest.raises(Exception):
            budget.max_facts = 20
        assert hash(budget) == hash(ExecutionBudget(max_facts=10))


class TestErrorHierarchy:
    def test_budget_exceeded_is_a_chase_budget_exceeded(self):
        # Pre-governance callers catching ChaseBudgetExceeded keep working.
        assert issubclass(BudgetExceeded, ChaseBudgetExceeded)
        assert issubclass(BudgetExceeded, ExecutionInterrupted)
        assert issubclass(ExecutionCancelled, ExecutionInterrupted)
        assert issubclass(ExecutionInterrupted, ReproError)

    def test_interrupted_carries_budget_report(self):
        report = BudgetReport(
            exhausted="deadline",
            elapsed_seconds=1.5,
            deadline_seconds=1.0,
            steps=3,
            max_steps=None,
            facts=7,
            max_facts=None,
            approx_memory_bytes=None,
            max_memory_bytes=None,
        )
        exc = BudgetExceeded("boom", budget_report=report)
        assert exc.budget_report is report
        assert ExecutionInterrupted("plain").budget_report is None


class TestGovernorDeadline:
    def test_poll_raises_after_deadline(self):
        clock = FakeClock()
        governor = Governor(ExecutionBudget(deadline_seconds=1.0), clock=clock)
        governor.poll("site")  # inside the deadline: fine
        clock.advance(1.01)
        with pytest.raises(BudgetExceeded) as err:
            governor.poll("site")
        assert err.value.budget_report.exhausted == "deadline"
        assert err.value.budget_report.elapsed_seconds == pytest.approx(1.01)

    def test_tick_is_amortised(self):
        clock = FakeClock()
        governor = Governor(ExecutionBudget(deadline_seconds=1.0), clock=clock)
        clock.advance(2.0)  # already past the deadline
        # The first TICK_MASK calls skip the real poll entirely.
        for _ in range(TICK_MASK):
            governor.tick()
        with pytest.raises(BudgetExceeded):
            governor.tick()

    def test_no_deadline_never_checks_the_clock(self):
        calls = []

        def clock():
            calls.append(1)
            return 0.0

        governor = Governor(ExecutionBudget(max_facts=10), clock=clock)
        baseline = len(calls)  # __init__ reads the clock once
        governor.poll("site", facts=5)
        assert len(calls) == baseline


class TestGovernorCounters:
    def test_step_budget(self):
        governor = Governor(ExecutionBudget(max_steps=3))
        governor.step(3)
        with pytest.raises(BudgetExceeded) as err:
            governor.step()
        assert err.value.budget_report.exhausted == "steps"
        assert err.value.budget_report.steps == 4

    def test_fact_ceiling(self):
        governor = Governor(ExecutionBudget(max_facts=10))
        governor.poll("site", facts=10)  # at the ceiling: fine
        with pytest.raises(BudgetExceeded) as err:
            governor.poll("site", facts=11)
        assert err.value.budget_report.exhausted == "facts"
        assert err.value.budget_report.facts == 11

    def test_memory_ceiling_via_checkpoint(self):
        instance = chase(INTRO_MANDATORY_Q, max_level=4).instance
        estimate = approx_instance_bytes(instance)
        assert estimate > 0
        governor = Governor(ExecutionBudget(max_memory_bytes=estimate // 2))
        with pytest.raises(BudgetExceeded) as err:
            governor.checkpoint("chase.round", instance=instance)
        assert err.value.budget_report.exhausted == "memory"
        assert err.value.budget_report.approx_memory_bytes == estimate
        # A roomy ceiling records the estimate without raising.
        roomy = Governor(ExecutionBudget(max_memory_bytes=estimate * 10))
        roomy.checkpoint("chase.round", instance=instance)
        assert roomy.approx_memory_bytes == estimate

    def test_memory_estimate_scales_with_instance(self):
        small = chase(INTRO_MANDATORY_Q, max_level=1).instance
        empty_bytes = approx_instance_bytes([])
        assert empty_bytes == 0
        assert approx_instance_bytes(small) > 0
        assert MEMORY_OVERHEAD_FACTOR >= 1


class TestCancelScope:
    def test_cancel_observed_at_next_poll(self):
        scope = CancelScope()
        governor = Governor(scope=scope)
        governor.poll("site")
        scope.cancel("user hit ctrl-c")
        with pytest.raises(ExecutionCancelled) as err:
            governor.poll("site")
        assert "user hit ctrl-c" in str(err.value)
        assert err.value.budget_report.exhausted == "cancelled"

    def test_cancel_is_idempotent(self):
        scope = CancelScope()
        scope.cancel()
        scope.cancel("again")
        assert scope.cancelled
        assert scope.reason == "again"


class TestReporting:
    def test_report_snapshot(self):
        clock = FakeClock()
        governor = Governor(
            ExecutionBudget(deadline_seconds=5.0, max_steps=100), clock=clock
        )
        governor.step(7)
        governor.poll("site", facts=42)
        clock.advance(1.25)
        report = governor.report()
        assert report.exhausted is None
        assert report.elapsed_seconds == pytest.approx(1.25)
        assert report.steps == 7
        assert report.facts == 42
        assert report.max_steps == 100
        as_dict = report.as_dict()
        assert as_dict["deadline_seconds"] == 5.0
        assert "elapsed=1.250s" in str(report)

    def test_exhaustion_is_counted_in_metrics(self):
        obs = Observability(metrics=MetricsRegistry())
        governor = Governor(ExecutionBudget(max_steps=1), obs=obs)
        with pytest.raises(BudgetExceeded):
            governor.step(2)
        dump = obs.metrics.as_dict()
        counts = dump["counters"]["governance.budget_exhausted"]
        assert counts == {"resource=steps": 1}
