"""Interrupted chase sessions resume to the uninterrupted fixpoint.

The governance layer may stop a :class:`ChaseRun` mid-extension — losing
the in-flight semi-naive delta.  The resume path restarts the delta from
the full instance (sound for the restricted chase: satisfied heads never
refire), so a run interrupted at *any* point and then extended with a
fresh budget must land on the same instance — up to null renaming — as a
run that was never interrupted.  Step budgets make the interruption
point exact and the test fully deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chase.engine import ChaseConfig, ChaseEngine
from repro.core.errors import ExecutionInterrupted
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.governance.budget import CancelScope, ExecutionBudget, Governor
from repro.workloads.corpus import EXAMPLE2_QUERY, PAPER_QUERIES
from repro.workloads.query_gen import QueryGenerator
from tests.property.test_property_chase_run import equal_up_to_null_renaming

BOUND = 4

RUN_SETTINGS = settings(max_examples=25, deadline=None)


def _interrupt_then_resume(query, interrupt_after_steps, bound=BOUND):
    """Chase with a step budget, let it trip, resume without one."""
    engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=bound))
    run = engine.start(query)
    interrupted = False
    try:
        run.extend_to(
            bound,
            governor=Governor(ExecutionBudget(max_steps=interrupt_after_steps)),
        )
    except ExecutionInterrupted:
        interrupted = True
    run.extend_to(bound)  # resume, no governor
    return run, interrupted


def _fresh(query, bound=BOUND):
    engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=bound))
    run = engine.start(query)
    run.extend_to(bound)
    return run


def assert_resumes_to_fixpoint(query, interrupt_after_steps):
    resumed, _ = _interrupt_then_resume(query, interrupt_after_steps)
    fresh = _fresh(query)
    assert resumed.failed == fresh.failed
    if resumed.failed:
        return
    assert equal_up_to_null_renaming(
        resumed.result().instance.index.to_frozenset(),
        fresh.result().instance.index.to_frozenset(),
    ), (
        f"resume after a {interrupt_after_steps}-step interruption diverged "
        f"from the uninterrupted chase on {query}"
    )


class TestCorpusResume:
    @pytest.mark.parametrize("steps", [1, 5, 20, 100])
    def test_example2_resumes_at_any_interruption_point(self, steps):
        assert_resumes_to_fixpoint(EXAMPLE2_QUERY, steps)

    def test_paper_corpus(self):
        for query in PAPER_QUERIES:
            assert_resumes_to_fixpoint(query, 3)

    def test_interruption_actually_happened(self):
        # Guard against the budget being too lax to trip: with one step
        # allowed, the cyclic query must be interrupted.
        _, interrupted = _interrupt_then_resume(EXAMPLE2_QUERY, 1)
        assert interrupted

    def test_cancelled_run_resumes_too(self):
        scope = CancelScope()
        scope.cancel("test")
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=BOUND))
        run = engine.start(EXAMPLE2_QUERY)
        with pytest.raises(ExecutionInterrupted):
            run.extend_to(BOUND, governor=Governor(scope=scope))
        run.extend_to(BOUND)
        fresh = _fresh(EXAMPLE2_QUERY)
        assert equal_up_to_null_renaming(
            run.result().instance.index.to_frozenset(),
            fresh.result().instance.index.to_frozenset(),
        )

    def test_repeated_interruptions(self):
        # Trip the budget on several successive extensions of one session.
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=8))
        run = engine.start(EXAMPLE2_QUERY)
        for _ in range(4):
            try:
                run.extend_to(
                    8, governor=Governor(ExecutionBudget(max_steps=5))
                )
            except ExecutionInterrupted:
                continue
            break
        run.extend_to(8)
        fresh = _fresh(EXAMPLE2_QUERY, bound=8)
        assert equal_up_to_null_renaming(
            run.result().instance.index.to_frozenset(),
            fresh.result().instance.index.to_frozenset(),
        )


class TestGeneratedResume:
    @RUN_SETTINGS
    @given(st.integers(0, 2**31), st.integers(1, 30))
    def test_generated_corpus_queries(self, seed, steps):
        query = QueryGenerator(seed).query()
        assert_resumes_to_fixpoint(query, steps)
