"""Graceful degradation of governed containment checks.

The contract under test, end to end:

* a budget that runs out turns the verdict into UNKNOWN — never into a
  wrong decision, and never into a hang (the acceptance bound is twice
  the deadline);
* cancellation behaves like exhaustion, with its own reason;
* an interrupted chase session resumed with a fresh budget reaches the
  same fixpoint as a run that was never interrupted;
* the parallel batch path retries crashed workers and falls back to
  in-parent checking per group, preserving input order.

Determinism comes from the fault harness: a repeating ``slow`` fault on
a chase checkpoint makes any deadline expire on schedule, independent of
host speed.
"""

import os
import threading
import time

import pytest

from repro.containment import bounded
from repro.chase.engine import ChaseConfig, ChaseEngine
from repro.containment.bounded import ContainmentChecker
from repro.containment.result import ContainmentReason, Decision
from repro.core.errors import BudgetExceeded, ExecutionCancelled
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.governance.budget import CancelScope, ExecutionBudget, Governor
from repro.governance.faults import Fault
from repro.obs import MetricsRegistry, Observability
from repro.workloads.corpus import EXAMPLE2_QUERY, PAPER_CONTAINMENT_PAIRS

DEADLINE = 0.1

#: Sleeps longer than DEADLINE at every anytime probe, so a governed
#: check deterministically finds its deadline expired at the very first
#: poll after the sleep — whatever the host speed or query difficulty.
SLOW_PROBE = (
    Fault(site="containment.probe", at=1, kind="slow", seconds=0.12, repeat=True),
)

#: Same fault, firing only on the first probe of a batch: result 0 goes
#: UNKNOWN, the rest decide normally.
SLOW_FIRST_PROBE = (
    Fault(site="containment.probe", at=1, kind="slow", seconds=0.12),
)

#: A pair whose verdict is negative (no early witness exit), used where
#: the check must actually run the full schedule.
NEGATIVE_PAIR = next(
    (q1, q2) for q1, q2, sigma, _ in PAPER_CONTAINMENT_PAIRS if not sigma
)

#: How long a deliberately wedged worker sleeps — far past the
#: parent-side future timeout the wedge tests shrink to well under a
#: second, yet short enough that the abandoned worker exits promptly
#: once its sleep ends.
WEDGE_SECONDS = 3.0


def _crash_then_wedge_worker(payload):
    """Pool entry point for the retry-wedge test (module-level: picklable).

    The first submission crashes; any resubmission sleeps through the
    parent-side timeout.  Attempts are distinguished through a sentinel
    file named by ``REPRO_TEST_WEDGE_SENTINEL``, which survives across
    worker processes.
    """
    sentinel = os.environ["REPRO_TEST_WEDGE_SENTINEL"]
    if not os.path.exists(sentinel):
        with open(sentinel, "w") as handle:
            handle.write("crashed")
        raise RuntimeError("injected first-attempt crash")
    time.sleep(WEDGE_SECONDS)
    raise RuntimeError("retry attempt should have been abandoned")


class TestDeadlineUnknown:
    def test_unknown_within_twice_the_deadline(self):
        q1, q2 = NEGATIVE_PAIR
        checker = ContainmentChecker(faults=SLOW_PROBE)
        t0 = time.perf_counter()
        result = checker.check(
            q1, q2, budget=ExecutionBudget(deadline_seconds=DEADLINE)
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < 2 * DEADLINE
        assert result.unknown
        assert result.decision is Decision.UNKNOWN
        assert result.reason is ContainmentReason.BUDGET_EXHAUSTED
        assert not result  # conservatively falsy
        assert result.witness is None
        assert result.verify()
        assert result.budget_report is not None
        assert result.budget_report.exhausted == "deadline"
        assert "UNKNOWN" in result.explain()

    def test_chase_deadline_on_cyclic_saturation_request(self):
        # EXAMPLE2_QUERY chases forever; asking for saturation with a
        # deadline must stop on time instead of hanging.
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=None))
        run = engine.start(EXAMPLE2_QUERY)
        governor = Governor(ExecutionBudget(deadline_seconds=DEADLINE))
        t0 = time.perf_counter()
        with pytest.raises(BudgetExceeded):
            run.extend_to(None, governor=governor)
        assert time.perf_counter() - t0 < 2 * DEADLINE

    def test_unknown_counts_a_metric(self):
        obs = Observability(metrics=MetricsRegistry())
        q1, q2 = NEGATIVE_PAIR
        checker = ContainmentChecker(obs=obs, faults=SLOW_PROBE)
        checker.check(q1, q2, budget=ExecutionBudget(deadline_seconds=DEADLINE))
        counters = obs.metrics.as_dict()["counters"]
        assert counters["containment.unknown"] == {"reason=budget-exhausted": 1}


class TestDegradationNeverFlipsVerdicts:
    def test_unlimited_governed_matches_ungoverned(self):
        for q1, q2, expected, _ in PAPER_CONTAINMENT_PAIRS:
            governed = ContainmentChecker(
                budget=ExecutionBudget.unlimited()
            ).check(q1, q2)
            assert governed.contained == expected
            assert not governed.unknown
            assert governed.verify()

    def test_slow_faults_without_budget_still_decide(self):
        # Slowness alone (no deadline) must not change any verdict.
        for q1, q2, expected, _ in PAPER_CONTAINMENT_PAIRS[:2]:
            result = ContainmentChecker(faults=SLOW_PROBE).check(q1, q2)
            assert not result.unknown
            assert result.contained == expected


class TestCancellation:
    def test_pre_cancelled_scope_returns_unknown_immediately(self):
        q1, q2, _, _ = PAPER_CONTAINMENT_PAIRS[0]
        scope = CancelScope()
        scope.cancel("shutdown")
        result = ContainmentChecker().check(
            q1, q2, budget=ExecutionBudget.unlimited(), scope=scope
        )
        assert result.unknown
        assert result.reason is ContainmentReason.CANCELLED
        assert result.decision is Decision.UNKNOWN

    def test_cross_thread_cancel_lands_within_bound(self):
        q1, q2 = NEGATIVE_PAIR
        scope = CancelScope()
        timer = threading.Timer(DEADLINE * 0.5, scope.cancel, args=("timer",))
        checker = ContainmentChecker(faults=SLOW_PROBE)
        timer.start()
        try:
            t0 = time.perf_counter()
            result = checker.check(
                q1, q2, budget=ExecutionBudget.unlimited(), scope=scope
            )
            elapsed = time.perf_counter() - t0
        finally:
            timer.cancel()
        assert result.unknown
        assert result.reason is ContainmentReason.CANCELLED
        assert elapsed < 2 * DEADLINE

    def test_raw_chase_cancellation(self):
        scope = CancelScope()
        scope.cancel("stop")
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=None))
        run = engine.start(EXAMPLE2_QUERY)
        with pytest.raises(ExecutionCancelled):
            run.extend_to(4, governor=Governor(scope=scope))


class TestSequentialBatch:
    def test_budgeted_batch_keeps_order_and_marks_unknown(self):
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
        expected = [sigma for _, _, sigma, _ in PAPER_CONTAINMENT_PAIRS]
        checker = ContainmentChecker(faults=SLOW_FIRST_PROBE)
        results = checker.check_all(
            pairs, budget=ExecutionBudget(deadline_seconds=DEADLINE)
        )
        assert len(results) == len(pairs)
        for (q1, q2), result in zip(pairs, results):
            assert result.q1.name == q1.name
            assert result.q2.name == q2.name
        # The one-shot fault hits exactly the first check of the batch:
        # it goes UNKNOWN, every later check decides correctly — each
        # check gets its own fresh Governor (and so its own deadline).
        assert results[0].unknown
        for result, sigma in zip(results[1:], expected[1:]):
            assert not result.unknown
            assert result.contained == sigma
            assert result.verify()


class TestParallelResilience:
    def test_worker_crash_falls_back_per_group_preserving_order(self):
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS]
        expected = [sigma for _, _, sigma, _ in PAPER_CONTAINMENT_PAIRS]
        obs = Observability(metrics=MetricsRegistry())
        checker = ContainmentChecker(obs=obs)
        crash_every_probe = (
            Fault(site="containment.probe", at=1, kind="raise", repeat=True),
        )
        results = checker.check_all(
            pairs, parallel=True, max_workers=2, worker_faults=crash_every_probe
        )
        assert [r.contained for r in results] == expected
        assert [
            (r.q1.name, r.q2.name) for r in results
        ] == [(q1.name, q2.name) for q1, q2 in pairs]
        counters = obs.metrics.as_dict()["counters"]
        assert counters["containment.pool_fallback_groups"] >= 1
        assert counters["containment.pool_retries"] >= 1

    def test_wedged_worker_times_out_parent_side_and_falls_back(
        self, monkeypatch
    ):
        # The worker sleeps straight through its own deadline (the slow
        # fault fires *before* the governor's deadline poll), so only
        # the parent-side future timeout can notice the wedge.  On
        # Python >= 3.11 concurrent.futures.TimeoutError is the builtin
        # TimeoutError, an OSError subclass — this drives the real
        # exception through the handler ordering to prove the timeout
        # is caught as a timeout, the group falls back in-parent, and
        # shutdown does not join the wedged worker.
        monkeypatch.setattr(bounded, "POOL_TIMEOUT_GRACE", 0.3)
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS[:2]]
        expected = [sigma for _, _, sigma, _ in PAPER_CONTAINMENT_PAIRS[:2]]
        obs = Observability(metrics=MetricsRegistry())
        checker = ContainmentChecker(obs=obs)
        wedge = (
            Fault(
                site="containment.probe",
                at=1,
                kind="slow",
                seconds=WEDGE_SECONDS,
            ),
        )
        t0 = time.perf_counter()
        results = checker.check_all(
            pairs,
            parallel=True,
            max_workers=2,
            budget=ExecutionBudget(deadline_seconds=DEADLINE),
            worker_faults=wedge,
        )
        elapsed = time.perf_counter() - t0
        # Joining a wedged worker would take >= WEDGE_SECONDS.
        assert elapsed < WEDGE_SECONDS
        assert [r.contained for r in results] == expected
        assert not any(r.unknown for r in results)
        counters = obs.metrics.as_dict()["counters"]
        assert counters["containment.pool_fallback_groups"] >= 1
        # A timeout goes straight to the fallback, never to a retry.
        assert "containment.pool_retries" not in counters

    def test_wedged_retry_times_out_and_falls_back(
        self, monkeypatch, tmp_path
    ):
        # The first submission of the first group crashes, every later
        # submission wedges: the retry timeout must behave exactly like
        # a first-attempt timeout — abandon the slot, fall back
        # in-parent, never join the worker.
        sentinel = tmp_path / "first-attempt-done"
        monkeypatch.setattr(bounded, "POOL_TIMEOUT_GRACE", 0.3)
        monkeypatch.setattr(
            bounded, "_check_group_worker", _crash_then_wedge_worker
        )
        monkeypatch.setenv("REPRO_TEST_WEDGE_SENTINEL", str(sentinel))
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS[:2]]
        expected = [sigma for _, _, sigma, _ in PAPER_CONTAINMENT_PAIRS[:2]]
        obs = Observability(metrics=MetricsRegistry())
        checker = ContainmentChecker(obs=obs)
        t0 = time.perf_counter()
        results = checker.check_all(
            pairs,
            parallel=True,
            max_workers=1,
            budget=ExecutionBudget(deadline_seconds=DEADLINE),
        )
        elapsed = time.perf_counter() - t0
        assert elapsed < WEDGE_SECONDS
        assert sentinel.exists()  # the crash attempt really ran
        assert [r.contained for r in results] == expected
        assert not any(r.unknown for r in results)
        counters = obs.metrics.as_dict()["counters"]
        assert counters["containment.pool_retries"] == 1
        assert counters["containment.pool_fallback_groups"] >= 1

    def test_worker_side_budget_yields_unknown_in_parallel(self):
        # The slow fault and the deadline are BOTH shipped to the pool:
        # the worker's own governor times out, and the worker returns
        # UNKNOWN results rather than wedging the pool.
        pairs = [(q1, q2) for q1, q2, _, _ in PAPER_CONTAINMENT_PAIRS[:2]]
        checker = ContainmentChecker()
        results = checker.check_all(
            pairs,
            parallel=True,
            max_workers=2,
            budget=ExecutionBudget(deadline_seconds=DEADLINE),
            worker_faults=SLOW_PROBE,
        )
        assert len(results) == len(pairs)
        for result in results:
            assert result.unknown
            assert result.reason is ContainmentReason.BUDGET_EXHAUSTED
