"""Unit tests for the RDF/SPARQL bridge."""

import pytest

from repro.containment import contained_classic, is_contained
from repro.core.atoms import data, member, sub, type_
from repro.core.errors import EncodingError
from repro.core.terms import Constant, Variable
from repro.flogic.kb import KnowledgeBase
from repro.rdf import (
    RDFS_RESOURCE,
    BGPQuery,
    Graph,
    Triple,
    TriplePattern,
    encode_bgp,
    encode_graph,
    encode_pattern,
    encode_triple,
    term,
)

j, s, p = Constant("john"), Constant("student"), Constant("person")


class TestTermCoercion:
    def test_question_mark_is_variable(self):
        assert term("?x") == Variable("x")

    def test_plain_string_is_constant(self):
        assert term("john") == Constant("john")

    def test_terms_pass_through(self):
        x = Variable("x")
        assert term(x) is x


class TestTripleEncoding:
    def test_rdf_type(self):
        got = encode_triple(Triple("john", "rdf:type", "student"))
        assert got == (member(j, s),)

    def test_subclassof(self):
        got = encode_triple(Triple("student", "rdfs:subClassOf", "person"))
        assert got == (sub(s, p),)

    def test_range(self):
        got = encode_triple(Triple("age", "rdfs:range", "number"))
        assert got == (type_(RDFS_RESOURCE, Constant("age"), Constant("number")),)

    def test_domain(self):
        got = encode_triple(Triple("age", "rdfs:domain", "person"))
        assert got == (type_(p, Constant("age"), RDFS_RESOURCE),)

    def test_plain_triple_is_data(self):
        got = encode_triple(Triple("john", "age", "33"))
        assert got == (data(j, Constant("age"), Constant("33")),)


class TestGraphEncoding:
    def test_universal_membership_added(self):
        g = Graph().add("john", "age", "33")
        atoms = encode_graph(g)
        assert member(j, RDFS_RESOURCE) in atoms
        assert member(Constant("33"), RDFS_RESOURCE) in atoms

    def test_universal_membership_optional(self):
        g = Graph().add("john", "age", "33")
        atoms = encode_graph(g, universal_membership=False)
        assert all(a.predicate != "member" for a in atoms)

    def test_schema_triples_do_not_create_entities(self):
        g = Graph().add("student", "rdfs:subClassOf", "person")
        atoms = encode_graph(g)
        assert all(a.predicate != "member" for a in atoms)

    def test_deterministic_order(self):
        g1 = Graph().add("a", "p", "b").add("c", "p", "d")
        g2 = Graph().add("c", "p", "d").add("a", "p", "b")
        assert encode_graph(g1) == encode_graph(g2)

    def test_range_entailment_through_kb(self):
        """age rdfs:range number + john age 33 |= 33 rdf:type number."""
        g = (
            Graph()
            .add("age", "rdfs:range", "number")
            .add("john", "age", "33")
        )
        kb = KnowledgeBase()
        for atom in encode_graph(g):
            kb.add(atom)
        assert kb.holds("?- 33:number.")


class TestPatternEncoding:
    def test_variable_predicate_reads_as_data(self):
        pattern = TriplePattern(term("?s"), term("?p"), term("?o"))
        got = encode_pattern(pattern)
        assert got[0].predicate == "data"

    def test_type_pattern(self):
        pattern = TriplePattern(term("?x"), term("rdf:type"), term("?c"))
        assert encode_pattern(pattern)[0].predicate == "member"

    def test_bgp_encoding_carries_projection(self):
        x = Variable("x")
        bgp = BGPQuery("q", (x,), (TriplePattern(x, term("rdf:type"), term("person")),))
        cq = encode_bgp(bgp)
        assert cq.head == (x,)
        assert cq.body == (member(x, p),)

    def test_empty_bgp_rejected(self):
        with pytest.raises(EncodingError):
            encode_bgp(BGPQuery("q", (), ()))


class TestBGPContainment:
    def test_subclass_members_contained_in_class_members(self):
        x, c, d = Variable("x"), Variable("c"), Variable("d")
        q1 = encode_bgp(
            BGPQuery(
                "q1",
                (x, c),
                (
                    TriplePattern(x, term("rdf:type"), d),
                    TriplePattern(d, term("rdfs:subClassOf"), c),
                ),
            )
        )
        q2 = encode_bgp(
            BGPQuery("q2", (x, c), (TriplePattern(x, term("rdf:type"), c),))
        )
        assert is_contained(q1, q2).contained
        assert not contained_classic(q1, q2).contained
        assert not is_contained(q2, q1).contained

    def test_display_forms(self):
        x = Variable("x")
        bgp = BGPQuery("q", (x,), (TriplePattern(x, term("rdf:type"), term("c")),))
        assert "SELECT ?x" in str(bgp)
        assert "rdf:type" in str(bgp.patterns[0])
