"""Additional RDF bridge coverage: graph API, schema corner cases."""

import pytest

from repro.core.terms import Constant, Variable
from repro.flogic.kb import KnowledgeBase
from repro.rdf import (
    RDFS_RESOURCE,
    BGPQuery,
    Graph,
    Triple,
    TriplePattern,
    encode_graph,
    encode_pattern,
    term,
)


class TestGraphAPI:
    def test_add_is_chainable_and_deduplicates(self):
        g = Graph().add("a", "p", "b").add("a", "p", "b")
        assert len(g) == 1

    def test_contains(self):
        g = Graph().add("a", "p", "b")
        assert Triple("a", "p", "b") in g
        assert Triple("a", "p", "c") not in g

    def test_iteration(self):
        triples = {Triple("a", "p", "b"), Triple("c", "q", "d")}
        g = Graph(triples)
        assert set(g) == triples

    def test_repr(self):
        assert "2 triples" in repr(Graph().add("a", "p", "b").add("c", "q", "d"))

    def test_triple_str(self):
        assert str(Triple("a", "p", "b")) == "a p b ."


class TestEncodingCornerCases:
    def test_subclass_chain_entails_transitively(self):
        g = (
            Graph()
            .add("a", "rdfs:subClassOf", "b")
            .add("b", "rdfs:subClassOf", "c")
            .add("x", "rdf:type", "a")
        )
        kb = KnowledgeBase()
        for atom in encode_graph(g):
            kb.add(atom)
        assert kb.holds("?- x:c.")

    def test_domain_declaration_encodes_signature(self):
        g = Graph().add("age", "rdfs:domain", "person")
        atoms = encode_graph(g)
        assert any(
            a.predicate == "type"
            and a.args[0] == Constant("person")
            and a.args[2] == RDFS_RESOURCE
            for a in atoms
        )

    def test_rdf_type_objects_not_made_resources(self):
        """Class terms of rdf:type triples are not data entities."""
        g = Graph().add("x", "rdf:type", "person")
        atoms = encode_graph(g)
        member_atoms = [a for a in atoms if a.predicate == "member"]
        # x:person and x:rdfs_resource, but not person:rdfs_resource.
        targets = {str(a.args[1]) for a in member_atoms if str(a.args[0]) == "person"}
        assert targets == set()

    def test_pattern_with_constant_subject(self):
        pattern = TriplePattern(term("john"), term("rdf:type"), term("?c"))
        encoded = encode_pattern(pattern)[0]
        assert encoded.args[0] == Constant("john")
        assert isinstance(encoded.args[1], Variable)

    def test_schema_pattern_positions(self):
        pattern = TriplePattern(term("?c"), term("rdfs:subClassOf"), term("?d"))
        encoded = encode_pattern(pattern)[0]
        assert encoded.predicate == "sub"

    def test_range_pattern(self):
        pattern = TriplePattern(term("?p"), term("rdfs:range"), term("?t"))
        # Predicate is a constant rdfs:range: interpreted structurally.
        encoded = encode_pattern(
            TriplePattern(term("age"), term("rdfs:range"), term("?t"))
        )[0]
        assert encoded.predicate == "type"
        assert encoded.args[0] == RDFS_RESOURCE

    def test_bgp_str(self):
        x = Variable("x")
        q = BGPQuery("q", (x,), (TriplePattern(x, term("p"), term("o")),))
        assert "SELECT ?x" in str(q)
        assert "WHERE" in str(q)
