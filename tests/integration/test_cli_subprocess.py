"""End-to-end CLI tests through ``subprocess``.

Unlike :mod:`tests.integration.test_cli` (which calls ``main()``
in-process), these spawn ``python -m repro`` so the real argv parsing,
exit-code propagation and the ``serve`` stdin/stdout protocol are
exercised exactly as a shell user sees them.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

POSITIVE_RULES = (
    "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].\n"
    "qq(A,B) :- T1[A*=>T2], T2[B*=>_].\n"
)
NEGATIVE_RULES = "q(A) :- T1[A*=>T2].\nqq(A) :- T1[A*=>T2], T2::T3.\n"

Q1_TEXT = "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_]."
Q2_TEXT = "qq(A,B) :- T1[A*=>T2], T2[B*=>_]."


def run_cli(*args, stdin=None, timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin,
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.fixture
def pair_file(tmp_path):
    path = tmp_path / "pair.flq"
    path.write_text(POSITIVE_RULES)
    return str(path)


class TestCheckExitCodes:
    def test_decided_contained_exits_zero(self, pair_file):
        proc = run_cli("check", pair_file)
        assert proc.returncode == 0, proc.stderr
        assert "⊆" in proc.stdout

    def test_decided_not_contained_exits_one(self, tmp_path):
        path = tmp_path / "neg.flq"
        path.write_text(NEGATIVE_RULES)
        proc = run_cli("check", str(path))
        assert proc.returncode == 1, proc.stderr

    def test_unknown_under_zero_deadline_exits_three(self, pair_file):
        proc = run_cli("check", pair_file, "--deadline", "0")
        assert proc.returncode == 3, proc.stderr
        assert "UNKNOWN" in proc.stdout.upper()

    def test_error_exits_two(self, tmp_path):
        path = tmp_path / "one.flq"
        path.write_text("q(A) :- T1[A*=>T2].\n")
        proc = run_cli("check", str(path))
        assert proc.returncode == 2

    def test_pool_flag_accepts_warm_and_cold(self, pair_file):
        for mode in ("warm", "cold"):
            proc = run_cli("check", pair_file, "--pool", mode)
            assert proc.returncode == 0, (mode, proc.stderr)

    def test_pool_flag_rejects_other_values(self, pair_file):
        proc = run_cli("check", pair_file, "--pool", "lukewarm")
        assert proc.returncode == 2


class TestServe:
    def test_serve_round_trip_and_per_line_errors(self):
        requests = "\n".join(
            [
                json.dumps({"id": 1, "op": "ping"}),
                json.dumps({"id": 2, "q1": Q1_TEXT, "q2": Q2_TEXT}),
                "this is not json",
                json.dumps({"id": 4, "op": "frobnicate"}),
                json.dumps({"id": 5, "op": "check", "q1": Q1_TEXT}),
                json.dumps(
                    {"id": 6, "q1": Q1_TEXT, "q2": Q2_TEXT, "deadline": 0}
                ),
                json.dumps({"id": 7, "op": "stats"}),
            ]
        )
        proc = run_cli("serve", stdin=requests + "\n")
        assert proc.returncode == 0, proc.stderr
        lines = [json.loads(line) for line in proc.stdout.splitlines() if line]
        assert len(lines) == 7
        by_id = {r.get("id"): r for r in lines}

        assert by_id[1] == {"id": 1, "ok": True, "op": "ping", "protocol": 2}
        assert by_id[2]["ok"] is True
        assert by_id[2]["decision"] == "TRUE"
        assert by_id[2]["contained"] is True
        # Line 3 (bad JSON) has no id but still got its own error response.
        bad_json = [r for r in lines if "id" not in r]
        assert len(bad_json) == 1 and bad_json[0]["ok"] is False
        assert bad_json[0]["reason"] == "bad-request"
        assert by_id[4]["ok"] is False and "frobnicate" in by_id[4]["error"]
        assert by_id[4]["reason"] == "unknown-op"
        assert by_id[5]["ok"] is False and "q2" in by_id[5]["error"]
        assert by_id[5]["reason"] == "bad-request"
        # Per-request budget: deadline 0 gives a clean UNKNOWN, not an error.
        assert by_id[6]["ok"] is True
        assert by_id[6]["decision"] == "UNKNOWN"
        assert by_id[6]["contained"] is None
        # The service survived all of the above and still answers stats.
        assert by_id[7]["ok"] is True
        assert by_id[7]["stats"]["service"]["checks"] >= 1

    def test_serve_sharded_stdio_shard_stats_and_drain(self):
        requests = "\n".join(
            [
                json.dumps({"id": 1, "q1": Q1_TEXT, "q2": Q2_TEXT}),
                json.dumps({"id": 2, "op": "shard_stats"}),
                json.dumps({"id": 3, "op": "drain"}),
                # Anything after a drain response goes unanswered: the
                # session is over.
                json.dumps({"id": 4, "op": "ping"}),
            ]
        )
        proc = run_cli("serve", "--shards", "2", stdin=requests + "\n")
        assert proc.returncode == 0
        lines = [json.loads(line) for line in proc.stdout.splitlines() if line]
        by_id = {r.get("id"): r for r in lines}
        assert sorted(by_id) == [1, 2, 3]
        assert by_id[1]["ok"] is True and by_id[1]["shard"] in (0, 1)
        shards = by_id[2]["shards"]
        assert [row["shard"] for row in shards] == [0, 1]
        assert sum(row["routed"] for row in shards) == 1
        assert by_id[3] == {"id": 3, "ok": True, "op": "drain", "drained": True, "shards": 2}

    def test_serve_empty_input_exits_zero(self):
        proc = run_cli("serve", stdin="")
        assert proc.returncode == 0
        assert proc.stdout == ""

    def test_serve_blank_lines_are_skipped(self):
        proc = run_cli("serve", stdin="\n\n\n")
        assert proc.returncode == 0
        assert proc.stdout == ""
