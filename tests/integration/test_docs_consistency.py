"""Documentation consistency: docs must reference real code.

Reproduction repos rot when the paper-mapping document drifts from the
code.  These tests resolve every ``repro.*`` dotted reference found in
the documentation and check the experiment ids and bench files that
DESIGN.md promises actually exist.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

_DOTTED = re.compile(r"`(repro(?:\.\w+)+)`")


def _resolve(dotted: str) -> bool:
    """Import the longest module prefix, then getattr the rest."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


def _dotted_references(path: Path) -> set[str]:
    return set(_DOTTED.findall(path.read_text()))


class TestPaperMapping:
    @pytest.mark.parametrize(
        "doc", ["paper_mapping.md", "architecture.md", "api.md"]
    )
    def test_every_reference_resolves(self, doc):
        path = REPO / "docs" / doc
        references = _dotted_references(path)
        assert references, f"docs/{doc} should reference code"
        unresolved = sorted(r for r in references if not _resolve(r))
        assert not unresolved, f"dangling references in docs/{doc}: {unresolved}"

    def test_docs_cross_links_exist(self):
        """Every relative .md link inside docs/ points at a real file."""
        for doc in (REPO / "docs").glob("*.md"):
            for target in re.findall(r"\]\(([\w./-]+\.md)\)", doc.read_text()):
                assert (doc.parent / target).exists(), (
                    f"docs/{doc.name} links to missing {target}"
                )

    def test_service_layer_documented(self):
        """The facade and the request lifecycle are written down."""
        api = (REPO / "docs" / "api.md").read_text()
        assert "repro.api.Engine" in api
        assert "flq serve" in api
        arch = (REPO / "docs" / "architecture.md").read_text()
        for station in ("ADMIT", "COALESCE", "SCHEDULE", "GOVERN", "DECIDE"):
            assert station in arch, f"lifecycle station {station} undocumented"

    def test_readme_links_both_new_docs(self):
        text = (REPO / "README.md").read_text()
        for target in ("docs/architecture.md", "docs/api.md"):
            assert target in text, f"README should link {target}"
            assert (REPO / target).exists()


class TestDesign:
    def test_experiment_ids_exist(self):
        from repro.experiments import EXPERIMENTS

        text = (REPO / "DESIGN.md").read_text()
        for match in re.findall(r"\| (E\d+)(?: / | \|)", text):
            assert match in EXPERIMENTS, f"DESIGN.md promises unknown {match}"

    def test_bench_files_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for bench in set(re.findall(r"benchmarks/[a-z0-9_]+\.py", text)):
            assert (REPO / bench).exists(), f"DESIGN.md references missing {bench}"

    def test_subsystem_modules_importable(self):
        text = (REPO / "DESIGN.md").read_text()
        for dotted in set(_DOTTED.findall(text)):
            assert _resolve(dotted), f"DESIGN.md references missing {dotted}"


class TestReadme:
    def test_quickstart_code_runs(self):
        """Execute the README's first Python block verbatim."""
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README should have python examples"
        exec(compile(blocks[0], "<readme-block-0>", "exec"), {})

    def test_kb_code_block_runs(self):
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert len(blocks) >= 2
        exec(compile(blocks[1], "<readme-block-1>", "exec"), {})

    def test_experiment_ids_mentioned_are_real(self):
        from repro.experiments import EXPERIMENTS

        text = (REPO / "README.md").read_text()
        for eid in set(re.findall(r"\b(E\d{1,2})\b", text)):
            if eid in {"E1", "E2"} or int(eid[1:]) <= 13:
                assert eid in EXPERIMENTS
