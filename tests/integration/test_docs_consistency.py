"""Documentation consistency: docs must reference real code.

Reproduction repos rot when the paper-mapping document drifts from the
code.  These tests resolve every ``repro.*`` dotted reference found in
the documentation, check the experiment ids and bench files that
DESIGN.md promises actually exist, and replay every wire example in
docs/protocol.md against a live ``flq serve --tcp`` subprocess.
"""

import importlib
import json
import re
import shlex
import socket
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

_DOTTED = re.compile(r"`(repro(?:\.\w+)+)`")


def _resolve(dotted: str) -> bool:
    """Import the longest module prefix, then getattr the rest."""
    parts = dotted.split(".")
    for split in range(len(parts), 0, -1):
        module_name = ".".join(parts[:split])
        try:
            obj = importlib.import_module(module_name)
        except ImportError:
            continue
        for attr in parts[split:]:
            if not hasattr(obj, attr):
                return False
            obj = getattr(obj, attr)
        return True
    return False


def _dotted_references(path: Path) -> set[str]:
    return set(_DOTTED.findall(path.read_text()))


class TestPaperMapping:
    @pytest.mark.parametrize(
        "doc", ["paper_mapping.md", "architecture.md", "api.md"]
    )
    def test_every_reference_resolves(self, doc):
        path = REPO / "docs" / doc
        references = _dotted_references(path)
        assert references, f"docs/{doc} should reference code"
        unresolved = sorted(r for r in references if not _resolve(r))
        assert not unresolved, f"dangling references in docs/{doc}: {unresolved}"

    def test_docs_cross_links_exist(self):
        """Every relative .md link inside docs/ points at a real file."""
        for doc in (REPO / "docs").glob("*.md"):
            for target in re.findall(r"\]\(([\w./-]+\.md)\)", doc.read_text()):
                assert (doc.parent / target).exists(), (
                    f"docs/{doc.name} links to missing {target}"
                )

    def test_service_layer_documented(self):
        """The facade and the request lifecycle are written down."""
        api = (REPO / "docs" / "api.md").read_text()
        assert "repro.api.Engine" in api
        assert "flq serve" in api
        arch = (REPO / "docs" / "architecture.md").read_text()
        for station in ("ADMIT", "COALESCE", "SCHEDULE", "GOVERN", "DECIDE"):
            assert station in arch, f"lifecycle station {station} undocumented"

    def test_storage_tier_documented(self):
        """The persistent store's API, tiers and runbook are written down."""
        api = (REPO / "docs" / "api.md").read_text()
        for symbol in ("repro.store.StoreConfig", "repro.store.SnapshotStore"):
            assert symbol in api, f"{symbol} missing from docs/api.md"
        assert "DeprecationWarning" in api  # the legacy-kwarg migration table
        arch = (REPO / "docs" / "architecture.md").read_text()
        for tier in ("MEMORY", "DISK", "RECOMPUTE"):
            assert tier in arch, f"storage tier {tier} undocumented"
        ops = (REPO / "docs" / "operations.md").read_text()
        for needle in (
            "flq store inspect",
            "flq store warm",
            "flq store vacuum",
            "--store-path",
            "--snapshot-policy",
        ):
            assert needle in ops, f"{needle} missing from docs/operations.md"

    def test_readme_links_both_new_docs(self):
        text = (REPO / "README.md").read_text()
        for target in ("docs/architecture.md", "docs/api.md"):
            assert target in text, f"README should link {target}"
            assert (REPO / target).exists()


_PROTOCOL_FENCE = re.compile(r"^```protocol([^\n]*)\n(.*?)^```", re.S | re.M)


def _protocol_blocks(text: str) -> list[tuple[list[str], list[tuple[str, dict]]]]:
    """Every ```protocol block as (serve flags, [(request line, expected)])."""
    blocks = []
    for match in _PROTOCOL_FENCE.finditer(text):
        flags = shlex.split(match.group(1).strip())
        exchanges: list[tuple[str, dict]] = []
        request = None
        for line in match.group(2).splitlines():
            if line.startswith("> "):
                assert request is None, "two requests without a response"
                request = line[2:]
            elif line.startswith("< "):
                assert request is not None, "response without a request"
                exchanges.append((request, json.loads(line[2:])))
                request = None
        assert request is None, "request without a response"
        assert exchanges, "empty protocol block"
        blocks.append((flags, exchanges))
    return blocks


def _match_payload(expected, actual, path="response"):
    """Compare a doc's expected payload against the wire's actual one.

    The string ``"..."`` is the documented wildcard: the key must exist
    but its value may be anything (timings, bulky nested stats).
    Everything else — including the exact key set of every object — must
    match, so the doc cannot understate *or* overstate a response.
    """
    if expected == "...":
        return
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected object, got {actual!r}"
        assert set(expected) == set(actual), (
            f"{path}: documented keys {sorted(expected)} != actual {sorted(actual)}"
        )
        for key, value in expected.items():
            _match_payload(value, actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(expected) == len(actual), (
            f"{path}: expected {expected!r}, got {actual!r}"
        )
        for i, (e, a) in enumerate(zip(expected, actual)):
            _match_payload(e, a, f"{path}[{i}]")
    else:
        assert expected == actual, f"{path}: expected {expected!r}, got {actual!r}"


class TestProtocolDoc:
    def test_examples_replay_verbatim(self):
        """Every request/response pair in docs/protocol.md, against a
        real ``flq serve --tcp`` server started with the block's flags."""
        blocks = _protocol_blocks((REPO / "docs" / "protocol.md").read_text())
        assert len(blocks) >= 8, "protocol.md lost its doc-tested examples"
        for flags, exchanges in blocks:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve", "--tcp", "127.0.0.1:0"]
                + flags,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env={"PYTHONPATH": "src"},
                cwd=REPO,
            )
            try:
                ready = json.loads(proc.stdout.readline())["serving"]
                assert ready["protocol"] == 2
                with socket.create_connection(
                    (ready["host"], ready["port"]), timeout=60
                ) as sock:
                    sock.settimeout(60)
                    wire = sock.makefile("rw", encoding="utf-8", newline="\n")
                    for request, expected in exchanges:
                        wire.write(request + "\n")
                        wire.flush()
                        line = wire.readline()
                        assert line, f"no answer to {request!r}"
                        _match_payload(expected, json.loads(line))
            finally:
                proc.terminate()
                proc.wait(timeout=60)

    def test_ops_table_is_complete(self):
        """The doc's op table names exactly the protocol's op set."""
        from repro.serve import OPS

        text = (REPO / "docs" / "protocol.md").read_text()
        section = text.split("## Operations")[1].split("###")[0]
        table_ops = [
            op
            for op in re.findall(r"^\| `(\w+)` \|", section, flags=re.M)
            if op != "op"  # the header row
        ]
        assert sorted(table_ops) == sorted(OPS)

    def test_rejection_reasons_documented(self):
        from repro.serve import (
            REASON_BAD_REQUEST,
            REASON_INTERNAL,
            REASON_QUOTA,
            REASON_UNKNOWN_OP,
        )

        text = (REPO / "docs" / "protocol.md").read_text()
        for reason in (
            REASON_BAD_REQUEST,
            REASON_INTERNAL,
            REASON_QUOTA,
            REASON_UNKNOWN_OP,
            "queue-full",
            "draining",
        ):
            assert f"`{reason}`" in text, f"reason {reason} undocumented"


class TestDesign:
    def test_experiment_ids_exist(self):
        from repro.experiments import EXPERIMENTS

        text = (REPO / "DESIGN.md").read_text()
        for match in re.findall(r"\| (E\d+)(?: / | \|)", text):
            assert match in EXPERIMENTS, f"DESIGN.md promises unknown {match}"

    def test_bench_files_exist(self):
        text = (REPO / "DESIGN.md").read_text()
        for bench in set(re.findall(r"benchmarks/[a-z0-9_]+\.py", text)):
            assert (REPO / bench).exists(), f"DESIGN.md references missing {bench}"

    def test_subsystem_modules_importable(self):
        text = (REPO / "DESIGN.md").read_text()
        for dotted in set(_DOTTED.findall(text)):
            assert _resolve(dotted), f"DESIGN.md references missing {dotted}"


class TestReadme:
    def test_quickstart_code_runs(self):
        """Execute the README's first Python block verbatim."""
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert blocks, "README should have python examples"
        exec(compile(blocks[0], "<readme-block-0>", "exec"), {})

    def test_kb_code_block_runs(self):
        text = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, flags=re.S)
        assert len(blocks) >= 2
        exec(compile(blocks[1], "<readme-block-1>", "exec"), {})

    def test_experiment_ids_mentioned_are_real(self):
        from repro.experiments import EXPERIMENTS

        text = (REPO / "README.md").read_text()
        for eid in set(re.findall(r"\b(E\d{1,2})\b", text)):
            if eid in {"E1", "E2"} or int(eid[1:]) <= 13:
                assert eid in EXPERIMENTS
