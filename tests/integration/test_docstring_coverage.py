"""The docstring-coverage gate: correctness of the counter, and the ratchet.

``tools/check_docstrings.py`` is the stdlib replacement for an
``interrogate``-style coverage gate (the CI pins it at the repository
baseline so coverage can only move up).  These tests pin down the
counting rules on a synthetic module and then run the real gate against
``src/repro`` at the CI threshold, so a regression fails locally before
it fails in CI.
"""

import subprocess
import sys
import textwrap
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
TOOLS = REPO / "tools"
sys.path.insert(0, str(TOOLS))

from check_docstrings import collect_file, collect_tree  # noqa: E402

#: The threshold the CI step pins (keep in sync with .github/workflows/ci.yml).
CI_FAIL_UNDER = 80.0


def _write_module(tmp_path, text):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(text), encoding="utf-8")
    return path


def test_counts_module_class_function(tmp_path):
    path = _write_module(
        tmp_path,
        '''
        """Module doc."""

        class Documented:
            """Class doc."""

            def method(self):
                """Method doc."""

        def undocumented():
            return 1
        ''',
    )
    documented, total, missing = collect_file(path)
    assert total == 4  # module + class + method + function
    assert documented == 3
    assert missing == ["undocumented:10"]


def test_private_dunder_nested_and_stub_definitions_are_skipped(tmp_path):
    path = _write_module(
        tmp_path,
        '''
        """Module doc."""

        class C:
            """Class doc."""

            def __init__(self):
                self.x = 1

            def _private(self):
                return 2

            def stub(self):
                ...

        def outer():
            """Doc."""
            def inner():
                return 3
            return inner
        ''',
    )
    documented, total, missing = collect_file(path)
    # Counted: module, C, outer.  __init__, _private, the ... stub and
    # the nested closure are all exempt.
    assert total == 3
    assert documented == 3
    assert missing == []


def test_missing_module_docstring_is_reported(tmp_path):
    path = _write_module(tmp_path, "x = 1\n")
    documented, total, missing = collect_file(path)
    assert (documented, total) == (0, 1)
    assert missing == ["<module>:1"]


def test_collect_tree_aggregates(tmp_path):
    (tmp_path / "a.py").write_text('"""Doc."""\n', encoding="utf-8")
    (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
    documented, total, missing = collect_tree(tmp_path)
    assert (documented, total) == (1, 2)
    assert set(missing) == {str(tmp_path / "b.py")}


def test_repo_meets_ci_threshold():
    """The ratchet: src/repro must stay at or above the CI threshold."""
    documented, total, _ = collect_tree(REPO / "src" / "repro")
    coverage = 100.0 * documented / total
    assert coverage >= CI_FAIL_UNDER, (
        f"docstring coverage {coverage:.1f}% fell below the CI gate of "
        f"{CI_FAIL_UNDER}% — document the new public definitions"
    )


def test_cli_exit_statuses(tmp_path):
    """The gate script's process contract: 0 above, 1 below, 2 on bad path."""
    (tmp_path / "a.py").write_text('"""Doc."""\n', encoding="utf-8")
    script = str(TOOLS / "check_docstrings.py")
    ok = subprocess.run(
        [sys.executable, script, str(tmp_path), "--fail-under", "99"],
        capture_output=True,
    )
    assert ok.returncode == 0
    (tmp_path / "b.py").write_text("x = 1\n", encoding="utf-8")
    below = subprocess.run(
        [sys.executable, script, str(tmp_path), "--fail-under", "99"],
        capture_output=True,
    )
    assert below.returncode == 1
    missing = subprocess.run(
        [sys.executable, script, str(tmp_path / "nope")], capture_output=True
    )
    assert missing.returncode == 2
