"""Integration tests: whole pipelines, from source text to verdicts."""

import pytest

from repro.containment import ContainmentChecker, contained_classic
from repro.flogic import KnowledgeBase, encode_rule, parse_program, parse_statement


class TestTextToContainment:
    """The paper's Section-1 flow, all through the public text API."""

    SOURCE = """
    % joinable attribute pairs
    q(A,B)  :- T1[A*=>T2], T2::T3, T3[B*=>_].
    qq(A,B) :- T1[A*=>T2], T2[B*=>_].
    """

    def test_parse_encode_check(self):
        program = parse_program(self.SOURCE)
        q, qq = (encode_rule(r) for r in program.rules())
        checker = ContainmentChecker()
        assert checker.check(q, qq).contained
        assert not checker.check(qq, q).contained
        assert not contained_classic(q, qq).contained

    def test_explanations_readable(self):
        program = parse_program(self.SOURCE)
        q, qq = (encode_rule(r) for r in program.rules())
        result = ContainmentChecker().check(q, qq)
        text = result.explain()
        assert "homomorphism" in text and "chase" in text


class TestOntologyLifecycle:
    """Build a KB, reason, query, evolve, re-query."""

    def test_full_lifecycle(self):
        kb = KnowledgeBase()
        kb.load(
            """
            vehicle[wheels {0:1} *=> number].
            car::vehicle.  bike::vehicle.
            car[doors *=> number].
            herbie:car.
            herbie[wheels->4].
            """
        )
        assert kb.is_consistent()
        assert kb.holds("?- herbie:vehicle.")
        assert kb.holds("?- 4:number.")  # rho1 through inherited signature
        # Meta-query: which classes have a number-typed attribute?
        answers = kb.ask("?- C[Att*=>number].")
        pairs = {(str(a[0]), str(a[1])) for a in answers}
        assert ("vehicle", "wheels") in pairs
        assert ("car", "wheels") in pairs  # rho7 inheritance
        assert ("herbie", "wheels") in pairs  # rho6 to members
        # Evolve: a second wheels value for herbie merges (functional).
        kb.add("herbie[wheels->4].")
        assert kb.is_consistent()
        kb.add("herbie[wheels->5].")
        assert not kb.is_consistent()

    def test_mandatory_value_invention_is_visible_but_uncertain(self):
        kb = KnowledgeBase()
        kb.load(
            """
            person[ssn {1:*} *=> string].
            ada:person.
            """
        )
        answers = kb.ask("?- ada[ssn->V].")
        assert len(answers) == 1 and not answers[0].certain
        assert kb.ask("?- ada[ssn->V].", certain_only=True) == []


class TestQueryOptimisationScenario:
    """Containment as a query optimiser: detect redundant conjuncts."""

    def test_redundant_subclass_hop_detected(self):
        # expensive: joins an extra subclass hop that Sigma_FL makes redundant
        expensive = parse_statement(
            "exp(O) :- member(O, C), sub(C, D), member(O, D)."
        )
        cheap = parse_statement("chp(O) :- member(O, C), sub(C, D).")
        q_exp, q_chp = encode_rule(expensive), encode_rule(cheap)
        checker = ContainmentChecker()
        # Equivalent under Sigma_FL (rho3 derives the third conjunct) ...
        assert checker.check(q_exp, q_chp).contained
        assert checker.check(q_chp, q_exp).contained
        # ... but not classically (the cheap one is strictly weaker there).
        assert contained_classic(q_exp, q_chp).contained
        assert not contained_classic(q_chp, q_exp).contained

    def test_minimised_query_same_answers_on_kb(self, university_kb):
        full = encode_rule(
            parse_statement("f(O) :- member(O, C), sub(C, D), member(O, D).")
        )
        minimised = encode_rule(parse_statement("m(O) :- member(O, C), sub(C, D)."))
        assert university_kb.ask(full) == university_kb.ask(minimised)
