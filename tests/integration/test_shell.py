"""Integration tests for the interactive shell."""

import io

import pytest

from repro.flogic import KnowledgeBase
from repro.shell import Shell, run_shell


@pytest.fixture
def shell():
    out = io.StringIO()
    return Shell(out=out), out


def feed(shell_pair, *lines):
    shell, out = shell_pair
    for line in lines:
        alive = shell.handle(line)
        if not alive:
            return out.getvalue(), False
    return out.getvalue(), True


class TestStatements:
    def test_assert_fact(self, shell):
        text, alive = feed(shell, "john:student.")
        assert "ok" in text and alive
        assert len(shell[0].kb) == 1

    def test_ask_query_with_answers(self, shell):
        text, _ = feed(shell, "john:student.", "student::person.", "?- X:person.")
        assert "john" in text

    def test_ask_query_without_answers(self, shell):
        text, _ = feed(shell, "?- X:person.")
        assert "no" in text

    def test_boolean_query_yes(self, shell):
        text, _ = feed(shell, "a:b.", "?- a:b.")
        assert "yes" in text

    def test_rule_style_query(self, shell):
        text, _ = feed(shell, "a:b.", "q(X) :- X:b.")
        assert "a" in text

    def test_parse_error_reported_not_fatal(self, shell):
        text, alive = feed(shell, "q(A :-", "a:b.")
        assert "error" in text and alive
        assert len(shell[0].kb) == 1

    def test_blank_and_comment_lines_ignored(self, shell):
        text, alive = feed(shell, "", "   ", "% comment", "// comment")
        assert alive and text == ""


class TestDotCommands:
    def test_help(self, shell):
        text, _ = feed(shell, ".help")
        assert ".facts" in text and ".quit" in text

    def test_facts_empty_and_filled(self, shell):
        text, _ = feed(shell, ".facts")
        assert "(empty)" in text
        text, _ = feed(shell, "a:b.", ".facts")
        assert "a:b." in text

    def test_schema(self, shell):
        text, _ = feed(shell, "b::c.", "x:b.", ".schema")
        assert "b::c." in text and "x:b" not in text.split(".schema")[-1]

    def test_consistent(self, shell):
        text, _ = feed(shell, ".consistent")
        assert "consistent" in text

    def test_explain(self, shell):
        text, _ = feed(
            shell, "a:b.", "b::c.", ".explain a:c."
        )
        assert "[rho3]" in text

    def test_explain_usage(self, shell):
        text, _ = feed(shell, ".explain")
        assert "usage" in text

    def test_save_and_load(self, shell, tmp_path):
        path = tmp_path / "dump.flq"
        text, _ = feed(shell, "a:b.", f".save {path}")
        assert "saved 1 facts" in text
        fresh = Shell(out=io.StringIO())
        fresh.handle(f".load {path}")
        assert len(fresh.kb) == 1

    def test_load_missing_file(self, shell):
        text, _ = feed(shell, ".load /nonexistent/nope.flq")
        assert "error" in text

    def test_unknown_command(self, shell):
        text, _ = feed(shell, ".bogus")
        assert "unknown command" in text

    def test_quit_stops(self, shell):
        _, alive = feed(shell, ".quit")
        assert not alive


class TestRunShell:
    def test_scripted_session(self):
        source = io.StringIO(
            "john:student.\nstudent::person.\n?- X:person.\n.quit\n"
        )
        out = io.StringIO()
        code = run_shell(input_stream=source, out=out)
        assert code == 0
        assert "john" in out.getvalue()

    def test_eof_terminates(self):
        out = io.StringIO()
        assert run_shell(input_stream=io.StringIO(""), out=out) == 0

    def test_preloaded_kb(self):
        kb = KnowledgeBase().load("a:b.")
        out = io.StringIO()
        run_shell(kb, input_stream=io.StringIO("?- X:b.\n"), out=out)
        assert "a" in out.getvalue()
