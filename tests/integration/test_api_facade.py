"""The stable ``repro`` facade and its deprecation shims."""

from __future__ import annotations

import subprocess
import sys
import warnings
from pathlib import Path

import repro
from repro.api import Engine

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestTopLevelFacade:
    def test_engine_is_exported(self):
        assert repro.Engine is Engine
        assert "Engine" in repro.__all__

    def test_core_types_reexported(self):
        for name in (
            "ContainmentChecker",
            "ContainmentResult",
            "Decision",
            "ChaseStore",
            "ExecutionBudget",
            "AdmissionRejected",
            "is_contained",
            "minimize_query",
        ):
            assert name in repro.__all__, name
            assert getattr(repro, name) is not None

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name


class TestDeprecationShims:
    def test_containment_package_import_warns(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                "from repro.containment import ContainmentChecker",
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": REPO_SRC},
        )
        assert proc.returncode != 0
        assert "DeprecationWarning" in proc.stderr
        assert "repro.api.Engine" in proc.stderr

    def test_submodule_imports_do_not_warn(self):
        proc = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::DeprecationWarning",
                "-c",
                (
                    "import repro\n"
                    "from repro.containment.bounded import ContainmentChecker\n"
                    "from repro.containment.store import ChaseStore\n"
                    "from repro.api import Engine\n"
                ),
            ],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": REPO_SRC},
        )
        assert proc.returncode == 0, proc.stderr

    def test_shim_returns_the_real_object(self):
        import repro.containment as legacy
        from repro.containment.bounded import ContainmentChecker

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            # Force shim resolution even if a previous test cached it.
            legacy.__dict__.pop("ContainmentChecker", None)
            assert legacy.ContainmentChecker is ContainmentChecker

    def test_shim_dir_lists_public_names(self):
        import repro.containment as legacy

        listing = dir(legacy)
        for name in ("ContainmentChecker", "ChaseStore", "ContainmentResult"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        import repro.containment as legacy

        try:
            legacy.does_not_exist
        except AttributeError as exc:
            assert "does_not_exist" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected AttributeError")


class TestEngineSurface:
    def test_engine_context_manager_closes(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            assert engine.check(q1, q2).contained
        assert engine.closed

    def test_engine_stats_shape(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            engine.check(q1, q2)
            stats = engine.stats()
        for section in ("service", "queue", "pool", "store"):
            assert section in stats, section
        assert stats["service"]["checks"] == 1
