"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def pair_file(tmp_path):
    path = tmp_path / "pair.flq"
    path.write_text(
        "q(A,B) :- T1[A*=>T2], T2::T3, T3[B*=>_].\n"
        "qq(A,B) :- T1[A*=>T2], T2[B*=>_].\n"
    )
    return str(path)


@pytest.fixture
def kb_file(tmp_path):
    path = tmp_path / "kb.flq"
    path.write_text(
        "student::person.\njohn:student.\nperson[name {1:*} *=> string].\n"
    )
    return str(path)


@pytest.fixture
def cyclic_file(tmp_path):
    path = tmp_path / "cyc.flq"
    path.write_text("q() :- C[A {1,*} *=> _], C[A *=> C].\n")
    return str(path)


class TestCheck:
    def test_positive_containment_exit_zero(self, pair_file, capsys):
        assert main(["check", pair_file]) == 0
        out = capsys.readouterr().out
        assert "⊆" in out and "classic" in out

    def test_negative_containment_exit_one(self, tmp_path, capsys):
        path = tmp_path / "neg.flq"
        path.write_text(
            "q(A) :- T1[A*=>T2].\nqq(A) :- T1[A*=>T2], T2::T3.\n"
        )
        assert main(["check", str(path)]) == 1

    def test_single_rule_is_an_error(self, tmp_path):
        path = tmp_path / "one.flq"
        path.write_text("q(A) :- T1[A*=>T2].\n")
        assert main(["check", str(path)]) == 2

    def test_level_bound_flag(self, pair_file):
        assert main(["check", pair_file, "--level-bound", "3"]) == 0


class TestChase:
    def test_chase_prints_levels(self, pair_file, capsys):
        assert main(["chase", pair_file]) == 0
        out = capsys.readouterr().out
        assert "L0" in out

    def test_chase_graph_flag(self, cyclic_file, capsys):
        assert main(["chase", cyclic_file, "--graph", "--max-level", "6"]) == 0
        out = capsys.readouterr().out
        assert "level 0:" in out

    def test_failed_chase_exit_one(self, tmp_path, capsys):
        path = tmp_path / "fail.flq"
        path.write_text(
            "q() :- data(O, A, red), data(O, A, blue), funct(A, O).\n"
        )
        assert main(["chase", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().out


class TestAsk:
    def test_answers_printed(self, kb_file, capsys):
        assert main(["ask", kb_file, "?- X:person."]) == 0
        assert "john" in capsys.readouterr().out

    def test_no_answers_exit_one(self, kb_file):
        assert main(["ask", kb_file, "?- X:robot."]) == 1

    def test_certain_flag_filters_invented(self, kb_file, capsys):
        assert main(["ask", kb_file, "?- john[name->V]."]) == 0
        assert main(["ask", kb_file, "?- john[name->V].", "--certain"]) == 1


class TestMinimize:
    def test_reducible_rule_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "redundant.flq"
        path.write_text("q(O) :- member(O, C), sub(C, D), member(O, D).\n")
        assert main(["minimize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "3 -> 2 conjuncts" in out

    def test_minimal_rule_exit_one(self, pair_file):
        assert main(["minimize", pair_file]) == 1


class TestClassify:
    def test_taxonomy_printed(self, tmp_path, capsys):
        path = tmp_path / "taxo.flq"
        path.write_text(
            "qa(O, C) :- member(O, C).\n"
            "qb(O, C) :- member(O, D), sub(D, C).\n"
        )
        assert main(["classify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "(most general)" in out and "⊑" in out


class TestExplain:
    def test_derivation_printed(self, kb_file, capsys):
        assert main(["explain", kb_file, "john:person."]) == 0
        out = capsys.readouterr().out
        assert "[rho3]" in out and "[initial]" in out

    def test_unentailed_fact_error(self, kb_file, capsys):
        assert main(["explain", kb_file, "john:robot."]) == 2
        assert "error" in capsys.readouterr().err

    def test_containment_provenance_without_fact(self, pair_file, capsys):
        assert main(["explain", pair_file]) == 0
        out = capsys.readouterr().out
        assert "[homomorphism]" in out
        assert "witness touches levels" in out
        assert "firing sequence" in out

    def test_provenance_mode_needs_two_rules(self, tmp_path, capsys):
        path = tmp_path / "one.flq"
        path.write_text("q(A) :- T1[A*=>T2].\n")
        assert main(["explain", str(path)]) == 2


class TestObservabilityFlags:
    def test_check_trace_and_metrics_exports(self, pair_file, tmp_path, capsys):
        import json

        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.json"
        assert (
            main(["check", pair_file, "--trace", str(trace), "--metrics", str(metrics)])
            == 0
        )
        trees = json.loads(trace.read_text())
        names = set()

        def collect(span):
            names.add(span["name"])
            for child in span.get("children", []):
                collect(child)

        for tree in trees:
            collect(tree)
        assert {"containment.check", "hom.search", "store.lookup", "chase.extend"} <= names
        dump = json.loads(metrics.read_text())
        assert dump["counters"]["containment.checks"] >= 1
        # Per-rule trigger counters carry rho labels.
        assert any(k.startswith("rule=rho") for k in dump["counters"]["chase.triggers"])

    def test_check_csv_trace_export(self, pair_file, tmp_path):
        trace = tmp_path / "t.csv"
        assert main(["check", pair_file, "--trace", str(trace)]) == 0
        header, *rows = trace.read_text().strip().splitlines()
        assert header.startswith("depth,name,")
        assert rows  # at least one span row

    def test_chase_metrics_export(self, pair_file, tmp_path):
        import json

        metrics = tmp_path / "m.json"
        assert main(["chase", pair_file, "--metrics", str(metrics)]) == 0
        dump = json.loads(metrics.read_text())
        assert dump["counters"]["chase.extend_segments"] >= 1

    def test_check_explain_flag_prints_provenance(self, pair_file, capsys):
        assert main(["check", pair_file, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "witness touches levels" in out

    def test_no_flags_no_files(self, pair_file, tmp_path):
        assert main(["check", pair_file]) == 0
        assert [p.name for p in tmp_path.iterdir()] == ["pair.flq"]


class TestOther:
    def test_termination_cyclic_exit_one(self, cyclic_file, capsys):
        assert main(["termination", cyclic_file]) == 1
        assert "cycle" in capsys.readouterr().out

    def test_termination_acyclic_exit_zero(self, pair_file):
        assert main(["termination", pair_file]) == 0

    def test_experiment_runs(self, capsys):
        assert main(["experiment", "E3"]) == 0
        assert "[E3]" in capsys.readouterr().out

    def test_parse_error_reported_as_repro_error(self, tmp_path, capsys):
        path = tmp_path / "bad.flq"
        path.write_text("q(A) :- ???.\n")
        assert main(["check", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_shell_subcommand_scripted(self, kb_file, capsys, monkeypatch):
        import io
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO("?- X:person.\n.quit\n"))
        assert main(["shell", kb_file]) == 0
        assert "john" in capsys.readouterr().out
