"""Unit tests for the on-disk snapshot store (repro.store.snapshot)."""

import os
import sqlite3
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.chase.engine import ChaseConfig, ChaseEngine, ChaseRun
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.store import (
    DB_FILENAME,
    FORMAT_VERSION,
    RunSnapshot,
    SnapshotError,
    SnapshotStore,
    dependency_fingerprint,
    key_digest,
)
from repro.workloads.corpus import EXAMPLE2_QUERY, PAPER_QUERIES
from tests.property.test_property_chase_run import equal_up_to_null_renaming


REPO_ROOT = Path(__file__).resolve().parents[2]


def subprocess_env():
    """Child interpreters need ``repro`` (src/) and this test module importable."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([str(REPO_ROOT / "src"), str(REPO_ROOT)])
    return env


def chase_snapshot(query, bound):
    """A RunSnapshot of *query* chased to *bound* levels."""
    engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=50_000))
    run = engine.start(query)
    run.extend_to(bound)
    return run.snapshot_state()


def snapshot_key(query):
    return key_digest(
        query.canonical_key(), dependency_fingerprint(SIGMA_FL)
    )


@pytest.fixture
def store(tmp_path):
    s = SnapshotStore(tmp_path / "chase.db")
    yield s
    s.close()


class TestRoundTrip:
    def test_save_load_identity(self, store):
        query = PAPER_QUERIES[0]
        snap = chase_snapshot(query, 4)
        key = snapshot_key(query)
        store.save(key, snap)
        loaded = store.load(key)
        assert loaded == snap
        assert loaded.partial is False

    def test_level_filtered_load_is_partial(self, store):
        snap = chase_snapshot(EXAMPLE2_QUERY, 6)
        assert snap.max_level >= 3  # EXAMPLE2 chases forever
        key = snapshot_key(EXAMPLE2_QUERY)
        store.save(key, snap)
        shallow = store.load(key, max_level=2)
        assert shallow.partial is True
        assert all(level <= 2 for level, _, _ in shallow.facts)
        assert len(shallow.facts) < len(snap.facts)
        # Requesting at or past the stored depth is a full load again.
        full = store.load(key, max_level=snap.max_level)
        assert full.partial is False
        assert full.facts == snap.facts

    def test_missing_key_loads_none(self, store):
        assert store.load("feedcafe") is None
        assert store.peek("feedcafe") is None

    def test_save_overwrites(self, store):
        query = PAPER_QUERIES[0]
        key = snapshot_key(query)
        store.save(key, chase_snapshot(query, 1))
        deeper = chase_snapshot(query, 5)
        store.save(key, deeper)
        assert store.load(key) == deeper
        assert len(store) == 1

    def test_peek_matches_saved_scalars(self, store):
        query = PAPER_QUERIES[0]
        snap = chase_snapshot(query, 3)
        key = snapshot_key(query)
        store.save(key, snap)
        peeked = store.peek(key)
        assert peeked["bound"] == snap.bound
        assert peeked["saturated"] == snap.saturated
        assert peeked["facts"] == len(snap.facts)


class TestInspection:
    def test_entries_stats_keys(self, store):
        for query in PAPER_QUERIES[:3]:
            store.save(snapshot_key(query), chase_snapshot(query, 2))
        assert len(store.keys()) == 3
        assert len(store.entries()) == 3
        stats = store.stats()
        assert stats["runs"] == 3
        assert stats["facts"] > 0
        assert stats["bytes"] > 0

    def test_delete_and_vacuum(self, store):
        query = PAPER_QUERIES[0]
        key = snapshot_key(query)
        store.save(key, chase_snapshot(query, 3))
        store.delete(key)
        assert store.load(key) is None
        before, after = store.vacuum()
        assert before >= after > 0


class TestReadOnly:
    def test_read_only_requires_existing_file(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(tmp_path / "absent.db", read_only=True)

    def test_read_only_serves_but_never_writes(self, tmp_path):
        query = PAPER_QUERIES[0]
        key = snapshot_key(query)
        rw = SnapshotStore(tmp_path / "chase.db")
        snap = chase_snapshot(query, 3)
        rw.save(key, snap)
        rw.close()
        ro = SnapshotStore(tmp_path / "chase.db", read_only=True)
        try:
            assert ro.read_only
            assert ro.load(key) == snap
            with pytest.raises(SnapshotError):
                ro.save(key, snap)
            with pytest.raises(SnapshotError):
                ro.vacuum()
        finally:
            ro.close()

    def test_directory_path_appends_db_filename(self, tmp_path):
        store = SnapshotStore(tmp_path)
        try:
            assert store.path.name == DB_FILENAME
        finally:
            store.close()


class TestFormatGuard:
    def test_foreign_format_version_rejected(self, tmp_path):
        path = tmp_path / "chase.db"
        SnapshotStore(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value=? WHERE key='format_version'",
            (str(FORMAT_VERSION + 1),),
        )
        conn.commit()
        conn.close()
        with pytest.raises(SnapshotError):
            SnapshotStore(path)


class TestCrashDurability:
    def test_kill_mid_write_leaves_store_readable(self, tmp_path):
        """A process killed inside save() must not corrupt prior rows."""
        db = tmp_path / "chase.db"
        query = PAPER_QUERIES[0]
        key = snapshot_key(query)
        first = chase_snapshot(query, 2)
        store = SnapshotStore(db)
        store.save(key, first)
        store.close()
        # The child monkeypatches the connection to die (os._exit) after
        # the DELETE+INSERTs but before COMMIT, mid-transaction.
        script = textwrap.dedent(
            """
            import os, sys
            from repro.store import SnapshotStore
            from repro.store.snapshot import SnapshotStore as S
            import tests.store.test_snapshot as h

            db, = sys.argv[1:]
            store = SnapshotStore(db)
            query = h.PAPER_QUERIES[0]
            snap = h.chase_snapshot(query, 5)
            conn = store._conn

            class Dying:
                def __init__(self, conn):
                    self._conn = conn
                def __enter__(self):
                    return self._conn.__enter__()
                def __exit__(self, *exc):
                    return self._conn.__exit__(*exc)
                def execute(self, *a, **k):
                    return self._conn.execute(*a, **k)
                def executemany(self, *a, **k):
                    self._conn.executemany(*a, **k)
                    os._exit(9)  # crash before the transaction commits
                def __getattr__(self, name):
                    return getattr(self._conn, name)

            store._conn = Dying(conn)
            store.save(h.snapshot_key(query), snap)
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(db)],
            capture_output=True,
            text=True,
            timeout=120,
            env=subprocess_env(),
            cwd=str(REPO_ROOT),
        )
        assert proc.returncode == 9, proc.stderr
        survivor = SnapshotStore(db)
        try:
            # The interrupted transaction rolled back: the old row is intact.
            assert survivor.load(key) == first
        finally:
            survivor.close()


class TestMultiProcessAttach:
    def test_two_processes_see_identical_facts(self, tmp_path):
        db = tmp_path / "chase.db"
        query = EXAMPLE2_QUERY
        key = snapshot_key(query)
        writer = SnapshotStore(db)
        writer.save(key, chase_snapshot(query, 5))
        writer.close()
        script = textwrap.dedent(
            """
            import sys
            from repro.store import SnapshotStore
            db, key = sys.argv[1:]
            store = SnapshotStore(db, read_only=True)
            snap = store.load(key)
            for level, rule, atom in snap.facts:
                print(level, rule, atom, sep="\\t")
            store.close()
            """
        )
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", script, str(db), key],
                capture_output=True,
                text=True,
                timeout=120,
                env=subprocess_env(),
                cwd=str(REPO_ROOT),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1]
        assert outputs[0].strip()  # non-empty fact listing


class TestChaseRunHydration:
    def test_from_snapshot_round_trips_state(self):
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=50_000))
        run = engine.start(EXAMPLE2_QUERY)
        run.extend_to(4)
        snap = run.snapshot_state()
        resumed = ChaseRun.from_snapshot(engine, EXAMPLE2_QUERY, snap)
        assert resumed.hydrated
        assert resumed.bound == run.bound
        assert set(resumed.instance) == set(run.instance)
        assert resumed.nulls.peek() == run.nulls.peek()

    def test_resumed_extension_equals_fresh(self):
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=50_000))
        run = engine.start(EXAMPLE2_QUERY)
        run.extend_to(3)
        snap = run.snapshot_state()
        resumed = ChaseRun.from_snapshot(engine, EXAMPLE2_QUERY, snap)
        resumed.extend_to(6)
        fresh = ChaseEngine(SIGMA_FL, ChaseConfig(max_steps=50_000)).start(
            EXAMPLE2_QUERY
        )
        fresh.extend_to(6)
        # The semi-naive resume may fire rules in a different order than the
        # incremental run, so null *indices* can diverge — the instances are
        # equal up to a bijective renaming of nulls (Lemma-style invariant).
        assert resumed.bound == fresh.bound
        assert len(set(resumed.instance)) == len(set(fresh.instance))
        assert equal_up_to_null_renaming(set(resumed.instance), set(fresh.instance))
