"""ChaseStore's persistent tier: hydration, resume, policies, read-only."""

import pytest

from repro.containment.store import (
    OUTCOME_EXTEND,
    OUTCOME_FULL,
    OUTCOME_SNAPSHOT,
    ChaseStore,
)
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.store import SnapshotStore, StoreConfig
from repro.workloads.corpus import EXAMPLE2_QUERY, PAPER_QUERIES

MAX_STEPS = 50_000


def persistent_store(path, **kwargs):
    kwargs.setdefault("max_steps", MAX_STEPS)
    return ChaseStore(SIGMA_FL, persist=path, **kwargs)


class TestRestartWarm:
    def test_restart_serves_from_snapshot(self, tmp_path):
        db = tmp_path / "chase.db"
        query = EXAMPLE2_QUERY
        first = persistent_store(db)
        run, outcome = first.run_for(query, 4)
        assert outcome == OUTCOME_FULL
        bound = run.bound
        first.close()

        warm = persistent_store(db)
        run, outcome = warm.run_for(query, 4)
        assert outcome == OUTCOME_SNAPSHOT
        assert warm.stats.misses == 0  # no chase recomputation
        assert warm.stats.snapshot_hits == 1
        assert run.bound >= 4
        assert bound >= 4
        warm.close()

    def test_shallow_prefix_resumes_as_extension(self, tmp_path):
        db = tmp_path / "chase.db"
        query = EXAMPLE2_QUERY
        first = persistent_store(db)
        first.run_for(query, 2)
        first.close()

        warm = persistent_store(db)
        run, outcome = warm.run_for(query, 6)
        # The persisted prefix stops at level 2: the request resumes it.
        assert outcome == OUTCOME_EXTEND
        assert warm.stats.misses == 0
        assert run.covers(6)
        warm.close()

    def test_partial_hydration_discarded_on_deeper_request(self, tmp_path):
        db = tmp_path / "chase.db"
        query = EXAMPLE2_QUERY
        first = persistent_store(db)
        deep, _ = first.run_for(query, 6)
        stored_bound = deep.bound
        first.close()

        warm = persistent_store(db)
        shallow, outcome = warm.open(query, 2)
        assert outcome == OUTCOME_SNAPSHOT
        assert shallow.hydrated_partial  # level-filtered load
        # A deeper request must not extend the truncated image: the store
        # drops it and re-probes the snapshot for the full prefix.
        full, outcome = warm.open(query, stored_bound)
        assert outcome == OUTCOME_SNAPSHOT
        assert not full.hydrated_partial
        assert full.covers(stored_bound)
        warm.close()


class TestSnapshotPolicies:
    def test_always_writes_at_session_close(self, tmp_path):
        store = persistent_store(tmp_path / "chase.db")
        store.run_for(PAPER_QUERIES[0], 3)
        assert store.stats.snapshot_stores == 1
        store.close()

    def test_manual_writes_only_on_flush(self, tmp_path):
        db = tmp_path / "chase.db"
        store = persistent_store(db, snapshot_policy="manual")
        store.run_for(PAPER_QUERIES[0], 3)
        assert store.stats.snapshot_stores == 0
        assert store.flush() == 1
        # close() must not double-write under the manual policy.
        store.close()
        reader = SnapshotStore(db, read_only=True)
        try:
            assert len(reader) == 1
        finally:
            reader.close()

    def test_evict_writes_on_demotion(self, tmp_path):
        store = persistent_store(
            tmp_path / "chase.db", snapshot_policy="evict", capacity=1
        )
        store.run_for(PAPER_QUERIES[0], 3)
        assert store.stats.snapshot_stores == 0  # still resident, not written
        store.run_for(PAPER_QUERIES[1], 3)  # evicts the first run to disk
        assert store.stats.snapshot_stores == 1
        store.close()

    def test_unchanged_run_not_rewritten(self, tmp_path):
        store = persistent_store(tmp_path / "chase.db")
        store.run_for(PAPER_QUERIES[0], 3)
        assert store.stats.snapshot_stores == 1
        # A read-only re-request leaves the run unchanged: no second write.
        store.run_for(PAPER_QUERIES[0], 3)
        assert store.stats.snapshot_stores == 1
        assert store.flush() == 0
        store.close()


class TestReadOnlyAttach:
    def test_attach_serves_and_never_writes(self, tmp_path):
        db = tmp_path / "chase.db"
        query = EXAMPLE2_QUERY
        writer = persistent_store(db)
        writer.run_for(query, 3)
        writer.close()

        reader = persistent_store(db, read_only=True)
        run, outcome = reader.run_for(query, 3)
        assert outcome == OUTCOME_SNAPSHOT
        assert run.covers(3)
        # Extending past the snapshot works in memory but never writes back.
        deeper, outcome = reader.run_for(query, 5)
        assert outcome == OUTCOME_EXTEND
        assert deeper.covers(5)
        assert reader.flush() == 0
        assert reader.stats.snapshot_stores == 0
        reader.close()

        check = SnapshotStore(db, read_only=True)
        try:
            digest = check.keys()[0]
            assert check.peek(digest)["bound"] == 3  # disk image untouched
        finally:
            check.close()


class TestConfigAndLifecycle:
    def test_from_config_wires_every_knob(self, tmp_path):
        config = StoreConfig(
            capacity=3, path=tmp_path / "chase.db", snapshot_policy="manual"
        )
        store = ChaseStore.from_config(SIGMA_FL, config, max_steps=MAX_STEPS)
        assert store.capacity == 3
        assert store.snapshot_policy == "manual"
        assert store.snapshot_path == str(tmp_path / "chase.db")
        assert not store.read_only
        store.close()

    def test_memory_only_store_has_no_snapshot_tier(self):
        store = ChaseStore(SIGMA_FL, max_steps=MAX_STEPS)
        assert store.snapshot_path is None
        assert store.flush() == 0
        store.close()  # no-op, must not raise

    def test_clear_demotes_to_disk(self, tmp_path):
        db = tmp_path / "chase.db"
        query = EXAMPLE2_QUERY
        store = persistent_store(db, snapshot_policy="evict")
        store.run_for(query, 3)
        assert store.stats.snapshot_stores == 0
        store.clear()
        assert len(store) == 0
        assert store.stats.snapshot_stores == 1  # demoted, not lost
        run, outcome = store.run_for(query, 3)
        assert outcome == OUTCOME_SNAPSHOT
        assert run.covers(3)
        store.close()
