"""Unit tests for the snapshot wire codec (repro.store.codec)."""

import pytest

from repro.core.atoms import data, member, sub, type_
from repro.core.terms import Constant, Null, Variable
from repro.dependencies.sigma_fl import SIGMA_FL, SIGMA_FL_MINUS
from repro.store import (
    decode_atom,
    decode_term,
    decode_terms,
    dependency_fingerprint,
    encode_atom,
    encode_term,
    encode_terms,
    key_digest,
)

X = Variable("X")
C = Constant("c")
N = Null(7)


class TestTermRoundTrip:
    @pytest.mark.parametrize("term", [X, C, N, Variable("_G3"), Null(0)])
    def test_round_trip(self, term):
        assert decode_term(encode_term(term)) == term

    def test_kinds_are_distinct(self):
        # A constant named like a variable must not collapse into one.
        assert decode_term(encode_term(Constant("X"))) == Constant("X")
        assert decode_term(encode_term(Constant("X"))) != X

    def test_terms_tuple_round_trip(self):
        terms = (X, C, N)
        assert decode_terms(encode_terms(terms)) == terms

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            decode_term(["z", "what"])


class TestAtomRoundTrip:
    @pytest.mark.parametrize(
        "atom",
        [
            member(X, C),
            sub(C, C),
            data(N, Variable("A"), Null(2)),
            type_(X, Variable("A"), N),
        ],
    )
    def test_round_trip(self, atom):
        assert decode_atom(encode_atom(atom)) == atom

    def test_encoding_is_deterministic(self):
        assert encode_atom(member(X, C)) == encode_atom(member(X, C))


class TestFingerprintAndKey:
    def test_fingerprint_deterministic(self):
        assert dependency_fingerprint(SIGMA_FL) == dependency_fingerprint(
            tuple(SIGMA_FL)
        )

    def test_fingerprint_separates_sigma_sets(self):
        assert dependency_fingerprint(SIGMA_FL) != dependency_fingerprint(
            SIGMA_FL_MINUS
        )

    def test_key_digest_mixes_key_and_sigma(self):
        fp = dependency_fingerprint(SIGMA_FL)
        fp2 = dependency_fingerprint(SIGMA_FL_MINUS)
        key = ("member", 2)
        assert key_digest(key, fp) == key_digest(key, fp)
        assert key_digest(key, fp) != key_digest(key, fp2)
        assert key_digest(key, fp) != key_digest(("sub", 2), fp)

    def test_key_digest_is_hex_and_filename_safe(self):
        digest = key_digest(("q", "anything"), dependency_fingerprint(SIGMA_FL))
        assert isinstance(digest, str)
        int(digest, 16)  # pure hex
