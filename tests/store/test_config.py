"""Tests for StoreConfig and the legacy-kwarg resolution shim."""

import pytest

from repro.api import Engine
from repro.serve.server import ContainmentServer
from repro.service.engine import ContainmentService
from repro.store import SNAPSHOT_POLICIES, StoreConfig, resolve_store_config


class TestValidation:
    def test_defaults(self):
        config = StoreConfig()
        assert config.capacity == 128
        assert config.path is None
        assert config.snapshot_policy == "always"
        assert config.read_only is False
        assert config.result_cache == 4096
        assert config.persistent is False

    def test_capacity_floor(self):
        with pytest.raises(ValueError):
            StoreConfig(capacity=0)

    def test_policy_membership(self):
        for policy in SNAPSHOT_POLICIES:
            StoreConfig(snapshot_policy=policy)
        with pytest.raises(ValueError):
            StoreConfig(snapshot_policy="sometimes")

    def test_result_cache_floor(self):
        StoreConfig(result_cache=0)  # 0 disables the cache, still valid
        with pytest.raises(ValueError):
            StoreConfig(result_cache=-1)

    def test_read_only_requires_path(self):
        with pytest.raises(ValueError):
            StoreConfig(read_only=True)
        StoreConfig(read_only=True, path="/tmp/somewhere")  # fine with a path

    def test_persistent_property(self, tmp_path):
        assert StoreConfig(path=tmp_path).persistent is True

    def test_with_overrides(self):
        base = StoreConfig()
        tweaked = base.with_overrides(capacity=9, snapshot_policy="manual")
        assert tweaked.capacity == 9
        assert tweaked.snapshot_policy == "manual"
        assert base.capacity == 128  # frozen original untouched


class TestResolve:
    def test_no_legacy_kwargs_no_warning(self, recwarn):
        resolved = resolve_store_config(None)
        assert resolved == StoreConfig()
        resolved = resolve_store_config(StoreConfig(capacity=7))
        assert resolved.capacity == 7
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_store_capacity_warns_and_wins(self):
        with pytest.warns(DeprecationWarning, match="store_capacity"):
            resolved = resolve_store_config(
                StoreConfig(capacity=7), store_capacity=3
            )
        assert resolved.capacity == 3  # legacy kwarg wins, as the old API did

    def test_result_cache_warns_and_wins(self):
        with pytest.warns(DeprecationWarning, match="result_cache"):
            resolved = resolve_store_config(
                StoreConfig(result_cache=10), result_cache=2
            )
        assert resolved.result_cache == 2

    def test_warning_names_owner(self):
        with pytest.warns(DeprecationWarning, match="ContainmentServer"):
            resolve_store_config(None, store_capacity=5, owner="ContainmentServer")


class TestLayerShims:
    """Every layer that took the scattered kwargs keeps accepting them."""

    def test_engine_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="Engine"):
            engine = Engine(store_capacity=5)
        try:
            assert engine.store_config.capacity == 5
        finally:
            engine.close()

    def test_engine_store_config_is_silent(self, recwarn):
        engine = Engine(store_config=StoreConfig(capacity=5, result_cache=8))
        try:
            assert engine.store_config.capacity == 5
            assert engine.store_config.result_cache == 8
        finally:
            engine.close()
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_service_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="ContainmentService"):
            service = ContainmentService(result_cache=16)
        try:
            assert service.store_config.result_cache == 16
        finally:
            service.close()

    def test_server_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="ContainmentServer"):
            server = ContainmentServer(shards=1, store_capacity=4)
        try:
            assert server.store_config.capacity == 4
        finally:
            server.close()

    def test_server_shards_share_config(self, tmp_path):
        config = StoreConfig(capacity=6, path=tmp_path / "chase.db")
        server = ContainmentServer(shards=2, store_config=config)
        try:
            assert server.store_config == config
            for engine in server.engines:
                assert engine.store_config == config
        finally:
            server.close()
