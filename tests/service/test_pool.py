"""WorkerPool: warm reuse, recycling, health checks, close semantics."""

from __future__ import annotations

import os

import pytest

from repro.obs import MetricsRegistry, Observability
from repro.service.pool import (
    WorkerPool,
    _pool_ping,
    check_group_worker,
)


def _square(x):
    return x * x


class TestWarmReuse:
    def test_executor_created_lazily(self):
        pool = WorkerPool(max_workers=1)
        assert not pool.warm
        assert pool.stats.pools_started == 0
        pool.close()

    def test_same_executor_across_batches(self):
        with WorkerPool(max_workers=1) as pool:
            first = pool.acquire()
            if first is None:
                pytest.skip("platform cannot create process pools")
            assert pool.warm
            for _ in range(3):
                assert pool.acquire() is first
            assert pool.stats.pools_started == 1

    def test_submit_round_trips(self):
        with WorkerPool(max_workers=1) as pool:
            if pool.acquire() is None:
                pytest.skip("platform cannot create process pools")
            assert pool.submit(_square, 7).result(timeout=60) == 49
            assert pool.stats.tasks_submitted == 1

    def test_pool_starts_metric(self):
        obs = Observability(metrics=MetricsRegistry())
        with WorkerPool(max_workers=1, obs=obs) as pool:
            if pool.acquire() is None:
                pytest.skip("platform cannot create process pools")
            pool.acquire()
            assert obs.metrics.counter("service.pool_starts").value == 1


class TestRecycle:
    def test_recycle_replaces_executor(self):
        with WorkerPool(max_workers=1) as pool:
            first = pool.acquire()
            if first is None:
                pytest.skip("platform cannot create process pools")
            pool.recycle(reason="test")
            assert not pool.warm
            second = pool.acquire()
            assert second is not None and second is not first
            assert pool.stats.pools_started == 2
            assert pool.stats.recycles == 1

    def test_recycle_without_executor_is_noop(self):
        pool = WorkerPool()
        pool.recycle()
        assert pool.stats.recycles == 0
        pool.close()

    def test_recycle_metric_labelled_with_reason(self):
        obs = Observability(metrics=MetricsRegistry())
        with WorkerPool(max_workers=1, obs=obs) as pool:
            if pool.acquire() is None:
                pytest.skip("platform cannot create process pools")
            pool.recycle(reason="wedged")
            counter = obs.metrics.counter("service.pool_recycles", reason="wedged")
            assert counter.value == 1


class TestHealthcheck:
    def test_healthy_pool_pings(self):
        with WorkerPool(max_workers=1) as pool:
            if pool.acquire() is None:
                pytest.skip("platform cannot create process pools")
            assert pool.healthcheck(timeout=60) is True
            assert pool.stats.healthchecks == 1
            assert pool.stats.recycles == 0

    def test_ping_returns_a_pid(self):
        assert _pool_ping() == os.getpid()


class TestClose:
    def test_close_refuses_new_work(self):
        pool = WorkerPool(max_workers=1)
        pool.close()
        assert pool.closed
        assert pool.acquire() is None
        with pytest.raises(RuntimeError):
            pool.submit(_square, 2)

    def test_close_is_idempotent(self):
        pool = WorkerPool()
        pool.close()
        pool.close()
        assert pool.closed

    def test_context_manager_closes(self):
        with WorkerPool() as pool:
            pass
        assert pool.closed


class TestGroupWorker:
    def test_check_group_worker_decides_pairs(self, joinable_pair):
        from repro.containment.bounded import theorem12_bound
        from repro.dependencies import SIGMA_FL

        q1, q2 = joinable_pair
        bound = theorem12_bound(q1, q2)
        payload = (
            SIGMA_FL,
            True,
            200_000,
            True,
            None,
            None,
            "auto",
            [(q1, q2, bound)],
        )
        results = check_group_worker(payload)
        assert len(results) == 1
        assert results[0].contained
