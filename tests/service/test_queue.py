"""AdmissionQueue: slots, bounded waiting room, rejection, drain."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.errors import AdmissionRejected
from repro.obs import MetricsRegistry, Observability
from repro.service.queue import AdmissionQueue


class TestAdmission:
    def test_admit_releases_slot(self):
        queue = AdmissionQueue(max_active=1)
        with queue.admit():
            assert queue.active == 1
        assert queue.active == 0
        assert queue.stats.admitted == 1

    def test_validates_limits(self):
        with pytest.raises(ValueError):
            AdmissionQueue(max_active=0)
        with pytest.raises(ValueError):
            AdmissionQueue(max_pending=-1)

    def test_excess_requests_wait_their_turn(self):
        queue = AdmissionQueue(max_active=2, max_pending=16)
        running = threading.Semaphore(0)
        release = threading.Event()
        seen = []

        def work(i):
            with queue.admit():
                running.release()
                release.wait(timeout=30)
                seen.append(i)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        # Exactly max_active requests run; the rest park in the queue.
        running.acquire(timeout=10)
        running.acquire(timeout=10)
        deadline = time.monotonic() + 10
        while queue.depth < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert queue.active == 2
        assert queue.depth == 4
        release.set()
        for t in threads:
            t.join(timeout=30)
        assert sorted(seen) == list(range(6))
        assert queue.stats.peak_active == 2
        assert queue.stats.peak_pending == 4


class TestRejection:
    def test_full_waiting_room_rejects(self):
        queue = AdmissionQueue(max_active=1, max_pending=0)
        release = threading.Event()
        started = threading.Event()

        def hold():
            with queue.admit():
                started.set()
                release.wait(timeout=30)

        t = threading.Thread(target=hold)
        t.start()
        assert started.wait(timeout=10)
        with pytest.raises(AdmissionRejected) as exc_info:
            with queue.admit():
                pass
        assert exc_info.value.reason == "queue-full"
        release.set()
        t.join(timeout=30)
        assert queue.stats.rejected == 1

    def test_closed_queue_rejects_as_draining(self):
        queue = AdmissionQueue()
        queue.close()
        with pytest.raises(AdmissionRejected) as exc_info:
            with queue.admit():
                pass
        assert exc_info.value.reason == "draining"

    def test_parked_waiter_rejected_on_close(self):
        queue = AdmissionQueue(max_active=1, max_pending=4)
        release = threading.Event()
        started = threading.Event()
        outcome = {}

        def hold():
            with queue.admit():
                started.set()
                release.wait(timeout=30)

        def wait_in_line():
            try:
                with queue.admit():
                    outcome["admitted"] = True
            except AdmissionRejected as exc:
                outcome["reason"] = exc.reason

        holder = threading.Thread(target=hold)
        holder.start()
        assert started.wait(timeout=10)
        waiter = threading.Thread(target=wait_in_line)
        waiter.start()
        deadline = time.monotonic() + 10
        while queue.depth < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        queue.close()
        waiter.join(timeout=30)
        assert outcome == {"reason": "draining"}
        release.set()
        holder.join(timeout=30)

    def test_rejection_metric(self):
        obs = Observability(metrics=MetricsRegistry())
        queue = AdmissionQueue(obs=obs)
        queue.close()
        with pytest.raises(AdmissionRejected):
            with queue.admit(op="check"):
                pass
        counter = obs.metrics.counter(
            "service.rejections", op="check", reason="draining"
        )
        assert counter.value == 1


class TestDrain:
    def test_drain_waits_for_active_work(self):
        queue = AdmissionQueue(max_active=2)
        release = threading.Event()
        started = threading.Event()

        def work():
            with queue.admit():
                started.set()
                release.wait(timeout=30)

        t = threading.Thread(target=work)
        t.start()
        assert started.wait(timeout=10)
        assert queue.drain(timeout=0.05) is False
        release.set()
        assert queue.drain(timeout=30) is True
        t.join(timeout=30)
        assert queue.active == 0

    def test_drain_on_idle_queue_is_immediate(self):
        queue = AdmissionQueue()
        assert queue.drain(timeout=1) is True
        assert queue.closed

    def test_queue_depth_gauge(self):
        obs = Observability(metrics=MetricsRegistry())
        queue = AdmissionQueue(max_active=1, max_pending=4, obs=obs)
        release = threading.Event()
        started = threading.Event()

        def hold():
            with queue.admit():
                started.set()
                release.wait(timeout=30)

        def wait_in_line():
            with queue.admit():
                pass

        holder = threading.Thread(target=hold)
        holder.start()
        assert started.wait(timeout=10)
        waiter = threading.Thread(target=wait_in_line)
        waiter.start()
        deadline = time.monotonic() + 10
        while queue.depth < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        # The gauge mirrored the nonzero depth while the waiter parked.
        assert obs.metrics.gauge("service.queue_depth").value == 1
        release.set()
        holder.join(timeout=30)
        waiter.join(timeout=30)
        assert obs.metrics.gauge("service.queue_depth").value == 0
        assert obs.metrics.gauge("service.active").value == 0
