"""ContainmentService / Engine: coalescing, warm batches, shutdown."""

from __future__ import annotations

import multiprocessing
import threading
import time

import pytest

from repro.api import Engine
from repro.core.errors import AdmissionRejected
from repro.governance import CancelScope, ExecutionBudget
from repro.obs import MetricsRegistry, Observability, Tracer
from repro.workloads import QueryGenerator


def _corpus(n_groups=4, pairs_per_group=2, seed=11):
    """Pairs spanning *n_groups* distinct q1 chase groups."""
    gen = QueryGenerator(seed)
    pairs = []
    for _ in range(n_groups):
        q1, q2 = gen.containment_pair()
        for _ in range(pairs_per_group):
            pairs.append((q1, q2))
    return pairs


class TestCheck:
    def test_check_matches_direct_checker(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            result = engine.check(q1, q2)
        assert result.contained

    def test_explain_attaches_provenance(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            result = engine.explain(q1, q2)
        assert result.provenance is not None

    def test_chase_served_from_shared_store(self, joinable_pair):
        q1, _ = joinable_pair
        with Engine() as engine:
            first = engine.chase(q1, 2)
            assert first is engine.chase(q1, 2)
            assert engine.store.stats.hits >= 1

    def test_scope_carrying_check_bypasses_coalescing(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            result = engine.check(q1, q2, scope=CancelScope())
            assert result.contained
            assert engine.service.stats.coalesced == 0


class TestConcurrentChecks:
    def test_eight_concurrent_checks_match_monolithic_verdicts(self):
        pairs = [QueryGenerator(seed).containment_pair() for seed in range(8)]
        # Ground truth: each pair decided alone, monolithic schedule.
        expected = []
        for q1, q2 in pairs:
            with Engine(anytime=False) as solo:
                expected.append(solo.check(q1, q2).contained)

        obs = Observability(metrics=MetricsRegistry())
        results = [None] * len(pairs)
        errors = []
        with Engine(max_active=8, obs=obs) as engine:

            def work(i):
                try:
                    q1, q2 = pairs[i]
                    results[i] = engine.check(q1, q2)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [
                threading.Thread(target=work, args=(i,)) for i in range(len(pairs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors
            assert engine.service.queue.stats.admitted == len(pairs)
        got = [r.contained for r in results]
        assert got == expected

    def test_identical_inflight_checks_share_one_computation(self, joinable_pair):
        q1, q2 = joinable_pair
        obs = Observability(metrics=MetricsRegistry())
        engine = Engine(obs=obs)
        release = threading.Event()
        entered = threading.Event()
        calls = []
        inner_check = engine.service.checker.check

        def slow_check(*args, **kwargs):
            calls.append(1)
            entered.set()
            assert release.wait(timeout=30)
            return inner_check(*args, **kwargs)

        engine.service.checker.check = slow_check
        results = [None] * 6

        def work(i):
            results[i] = engine.check(q1, q2)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        threads[0].start()
        assert entered.wait(timeout=10)  # the leader is inside the checker
        for t in threads[1:]:
            t.start()
        # Followers pile onto the leader's future, not the queue.
        deadline = time.monotonic() + 10
        while engine.service.stats.coalesced < 5 and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()
        for t in threads:
            t.join(timeout=30)
        assert len(calls) == 1, "coalesced followers must not recompute"
        assert all(r is results[0] for r in results)
        assert engine.service.stats.coalesced == 5
        assert obs.metrics.counter("service.coalesce_hits").value == 5
        engine.service.checker.check = inner_check
        engine.close()

    def test_same_q1_requests_share_the_chase(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            engine.check(q1, q2)
            misses_before = engine.store.stats.misses
            engine.check(q1, q2, level_bound=2)
            # The second request's q1 chase came from the store, not fresh.
            assert engine.store.stats.misses == misses_before


class TestWarmBatches:
    def test_zero_pool_startup_after_warmup(self):
        pairs = _corpus(n_groups=4)
        with Engine(max_workers=2) as engine:
            first = engine.check_all(pairs)
            starts_after_first = engine.service.pool.stats.pools_started
            assert starts_after_first <= 1  # 0 = all decided in-parent
            second = engine.check_all(pairs)
            third = engine.check_all(pairs)
            # Warm-up paid at most once; repeat batches never re-spawn.
            assert engine.service.pool.stats.pools_started == starts_after_first
            assert [r.contained for r in second] == [r.contained for r in first]
            assert [r.contained for r in third] == [r.contained for r in first]

    def test_repeat_batch_short_circuits_dispatch(self):
        pairs = _corpus(n_groups=3)
        obs = Observability(metrics=MetricsRegistry())
        with Engine(max_workers=2, obs=obs) as engine:
            first = engine.check_all(pairs)
            submitted = engine.service.pool.stats.tasks_submitted
            second = engine.check_all(pairs)
            # Second batch: every verdict recalled, nothing dispatched.
            assert engine.service.pool.stats.tasks_submitted == submitted
            assert engine.service.stats.result_hits == len(pairs)
            assert obs.metrics.counter("service.result_hits").value == len(pairs)
            assert [r.contained for r in second] == [r.contained for r in first]

    def test_store_covered_groups_decided_in_parent(self, joinable_pair):
        q1, q2 = joinable_pair
        pairs = _corpus(n_groups=2) + [(q1, q2)]
        obs = Observability(metrics=MetricsRegistry())
        with Engine(max_workers=2, obs=obs) as engine:
            # Warm the parent store's q1 chase directly: chase() fills the
            # store but not the result cache, so the batch pair is a cold
            # request over a covered group.
            from repro.containment.bounded import theorem12_bound

            engine.chase(q1, theorem12_bound(q1, q2))
            engine.check_all(pairs)
            # The covered group never traveled to a worker.
            assert obs.metrics.counter("containment.pool_warm_groups").value >= 1

    def test_sequential_batch_matches_parallel(self):
        pairs = _corpus(n_groups=3)
        with Engine() as warm_engine:
            parallel = warm_engine.check_all(pairs)
        with Engine() as seq_engine:
            sequential = seq_engine.check_all(pairs, parallel=False)
        assert [r.contained for r in parallel] == [
            r.contained for r in sequential
        ]


class TestBudgetInheritance:
    def test_service_envelope_applies_without_request_budget(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine(budget=ExecutionBudget(deadline_seconds=0.0)) as engine:
            result = engine.check(q1, q2)
        assert result.unknown

    def test_request_cannot_loosen_the_envelope(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine(budget=ExecutionBudget(deadline_seconds=0.0)) as engine:
            result = engine.check(
                q1, q2, budget=ExecutionBudget(deadline_seconds=1000.0)
            )
        assert result.unknown

    def test_request_budget_tightens_open_envelope(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            result = engine.check(
                q1, q2, budget=ExecutionBudget(deadline_seconds=0.0)
            )
            assert result.unknown
            # The same check without the tight budget still decides.
            assert engine.check(q1, q2).contained


class TestClose:
    def test_close_drains_and_rejects(self, joinable_pair):
        q1, q2 = joinable_pair
        engine = Engine()
        engine.check(q1, q2)
        assert engine.close(timeout=30) is True
        assert engine.closed
        with pytest.raises(AdmissionRejected) as exc_info:
            engine.check(q1, q2)
        assert exc_info.value.reason == "draining"

    def test_close_leaves_no_worker_processes(self):
        before = {p.pid for p in multiprocessing.active_children()}
        engine = Engine(max_workers=2)
        engine.check_all(_corpus(n_groups=3))
        assert engine.close(timeout=60) is True
        leaked = [
            p
            for p in multiprocessing.active_children()
            if p.pid not in before and p.is_alive()
        ]
        assert not leaked, f"leaked worker processes: {leaked}"
        assert not engine.service.pool.warm

    def test_close_is_idempotent_and_context_manager(self, joinable_pair):
        q1, q2 = joinable_pair
        with Engine() as engine:
            engine.check(q1, q2)
            engine.close()
        assert engine.closed

    def test_per_request_span_emitted(self, joinable_pair):
        q1, q2 = joinable_pair
        obs = Observability(tracer=Tracer())
        with Engine(obs=obs) as engine:
            engine.check(q1, q2)
        names = [span.name for span in obs.tracer.spans]
        assert "service.check" in names
