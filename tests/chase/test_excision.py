"""Unit tests for the constructive Lemma-9 excision."""

import pytest

from repro.chase import ChaseGraph, chase
from repro.chase.excision import backward_primary_path, excise
from repro.chase.paths import bounded_image, equivalent, is_primary_path
from repro.core.atoms import member
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.workloads import EXAMPLE2_QUERY


@pytest.fixture(scope="module")
def chased():
    result = chase(EXAMPLE2_QUERY, max_level=18, track_graph=True)
    return result, ChaseGraph.from_result(result)


class TestBackwardPrimaryPath:
    def test_level0_conjunct_has_empty_path(self, chased):
        result, graph = chased
        for atom in graph.nodes_at_level(0):
            assert backward_primary_path(graph, atom) == []

    def test_path_reaches_level0(self, chased):
        result, graph = chased
        deep = [a for a in graph.nodes() if graph.level(a) >= 6]
        for atom in deep[:5]:
            path = backward_primary_path(graph, atom)
            assert path is not None
            assert graph.level(path[0].source) == 0
            assert path[-1].target == atom

    def test_path_is_primary(self, chased):
        result, graph = chased
        deep = [a for a in graph.nodes() if graph.level(a) >= 6]
        for atom in deep[:5]:
            path = backward_primary_path(graph, atom)
            assert is_primary_path(path)

    def test_arcs_chain(self, chased):
        result, graph = chased
        atom = max(graph.nodes(), key=graph.level)
        path = backward_primary_path(graph, atom)
        for first, second in zip(path, path[1:]):
            assert first.target == second.source


class TestExcise:
    def test_all_deep_conjuncts_excisable(self, chased):
        result, graph = chased
        instance = result.instance
        delta = 2 * EXAMPLE2_QUERY.size
        deep = [a for a in instance if instance.level_of(a) > delta]
        assert deep
        for atom in deep:
            trace = excise(graph, instance, atom, delta)
            assert trace is not None, f"excision failed for {atom}"
            assert graph.level(trace.result) <= delta

    def test_result_equivalent_to_start(self, chased):
        result, graph = chased
        instance = result.instance
        delta = 2 * EXAMPLE2_QUERY.size
        deep = [a for a in instance if instance.level_of(a) > delta]
        for atom in deep[:6]:
            trace = excise(graph, instance, atom, delta)
            assert equivalent(trace.start, trace.result)

    def test_agrees_with_search_based_lemma9(self, chased):
        """Both the construction and the search find a bounded image."""
        result, graph = chased
        instance = result.instance
        delta = 2 * EXAMPLE2_QUERY.size
        deep = [a for a in instance if instance.level_of(a) > delta]
        for atom in deep:
            constructive = excise(graph, instance, atom, delta)
            searched = bounded_image(instance, atom, delta)
            assert (constructive is not None) == (searched is not None)

    def test_levels_saved_accounting(self, chased):
        result, graph = chased
        instance = result.instance
        delta = 2 * EXAMPLE2_QUERY.size
        atom = max(instance, key=instance.level_of)
        trace = excise(graph, instance, atom, delta)
        assert trace.total_levels_saved == graph.level(atom) - graph.level(
            trace.result
        )

    def test_shallow_conjunct_trivial_trace(self, chased):
        result, graph = chased
        instance = result.instance
        delta = 2 * EXAMPLE2_QUERY.size
        shallow = graph.nodes_at_level(1)[0]
        trace = excise(graph, instance, shallow, delta)
        assert trace.clips == []
        assert trace.result == shallow

    def test_pretty_trace(self, chased):
        result, graph = chased
        instance = result.instance
        delta = 2 * EXAMPLE2_QUERY.size
        atom = max(instance, key=instance.level_of)
        text = excise(graph, instance, atom, delta).pretty()
        assert "clip [" in text and "final:" in text

    def test_none_without_graph_arcs(self):
        """Excision needs graph tracking; an arc-free graph yields None."""
        q = ConjunctiveQuery(
            "q", (), (member(Variable("O"), Variable("C")),)
        )
        result = chase(q, track_graph=True)
        graph = ChaseGraph.from_result(result)
        # Every conjunct is at level 0 here, so excision is trivially done.
        atom = member(Variable("O"), Variable("C"))
        trace = excise(graph, result.instance, atom, 2)
        assert trace.result == atom
