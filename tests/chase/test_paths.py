"""Unit tests for equivalence, primary paths and bounded images."""

import pytest

from repro.chase.engine import chase
from repro.chase.graph import ChaseGraph
from repro.chase.paths import (
    bounded_image,
    bounded_image_of_set,
    equivalent,
    follow_parallel,
    generalize_conjuncts,
    is_primary_path,
    parallel_paths,
    primary_path_arcs,
    primary_path_to,
)
from repro.core.atoms import Atom, data, member, type_
from repro.core.terms import Constant, Null, Variable

A, T, U, O = (Variable(n) for n in "A T U O".split())
c1, c2 = Constant("c1"), Constant("c2")


class TestEquivalence:
    """Definition 6: agree on components that are real constants."""

    def test_same_constants_equivalent(self):
        assert equivalent(member(c1, c2), member(c1, c2))

    def test_different_constants_not_equivalent(self):
        assert not equivalent(member(c1, c2), member(c2, c2))

    def test_variables_and_nulls_unconstrained(self):
        assert equivalent(
            Atom("data", (T, A, Null(1))), Atom("data", (Null(2), A, Null(3)))
        )

    def test_constant_vs_variable_not_equivalent(self):
        assert not equivalent(member(c1, T), member(T, T))

    def test_different_predicates_not_equivalent(self):
        assert not equivalent(member(T, U), Atom("sub", (T, U)))

    def test_figure1_chain_conjuncts_equivalent(self):
        """data(T,A,v1) ~ data(v1,A,v2): the repetition Lemma 9 exploits."""
        assert equivalent(
            Atom("data", (T, A, Null(1))), Atom("data", (Null(1), A, Null(2)))
        )

    def test_reflexive_and_symmetric(self):
        a1 = Atom("data", (T, A, Null(1)))
        a2 = Atom("data", (Null(5), A, c1))
        assert equivalent(a1, a1)
        assert equivalent(a1, a2) == equivalent(a2, a1)


@pytest.fixture
def example2_chased(example2_query):
    return chase(example2_query, max_level=12, track_graph=True)


@pytest.fixture
def example2_graph(example2_chased):
    return ChaseGraph.from_result(example2_chased)


class TestPrimaryPaths:
    def test_paths_from_mandatory_follow_chain(self, example2_graph):
        from repro.core.atoms import mandatory

        paths = list(primary_path_arcs(example2_graph, mandatory(A, T)))
        assert paths, "the rho5 arc should start a primary path"
        # The first hop is mandatory -> data via rho5 (level 0 -> 1).
        assert paths[0][0].rule == "rho5"

    def test_type_conjunct_starts_via_plus_two_hop(self, example2_graph):
        """Definition 7(ii): a path may leave type(...) with a +2-level arc."""
        v1 = Null(1)
        start = Atom("type", (v1, A, T))  # level 3
        paths = list(primary_path_arcs(example2_graph, start))
        assert any(
            p[0].target_level == example2_graph.level(start) + 2 for p in paths
        )

    def test_primary_path_to_finds_descendant(self, example2_graph):
        from repro.core.atoms import mandatory

        v2 = Null(2)
        target = Atom("member", (v2, T))
        path = primary_path_to(example2_graph, mandatory(A, T), target)
        assert path is not None
        assert path[-1].target == target
        assert is_primary_path(path)

    def test_primary_path_to_respects_max_length(self, example2_graph):
        from repro.core.atoms import mandatory

        v3 = Null(3)
        target = Atom("member", (v3, T))
        assert (
            primary_path_to(example2_graph, mandatory(A, T), target, max_length=2)
            is None
        )

    def test_is_primary_path_rejects_disconnected(self, example2_graph):
        arcs = list(example2_graph.primary_arcs())
        if len(arcs) >= 2:
            # Find two arcs that do not chain.
            for arc1 in arcs:
                for arc2 in arcs:
                    if arc1.target != arc2.source:
                        assert not is_primary_path([arc1, arc2])
                        return

    def test_empty_path_is_primary(self):
        assert is_primary_path([])


class TestParallelPaths:
    def test_equal_labels_are_parallel(self, example2_graph):
        from repro.core.atoms import mandatory

        v1, v2 = Null(1), Null(2)
        path1 = primary_path_to(
            example2_graph, mandatory(A, T), Atom("member", (v1, T))
        )
        path2 = primary_path_to(
            example2_graph, Atom("mandatory", (A, v1)), Atom("member", (v2, T))
        )
        assert path1 is not None and path2 is not None
        assert parallel_paths(path1, path2)

    def test_different_lengths_not_parallel(self, example2_graph):
        arcs = example2_graph.primary_arcs()
        assert not parallel_paths(arcs[:1], arcs[:2])

    def test_follow_parallel_reruns_labels(self, example2_graph):
        from repro.core.atoms import mandatory

        v1 = Null(1)
        path1 = primary_path_to(
            example2_graph, mandatory(A, T), Atom("member", (v1, T))
        )
        labels = [arc.rule for arc in path1]
        rerun = follow_parallel(example2_graph, Atom("mandatory", (A, v1)), labels)
        assert rerun is not None
        assert [arc.rule for arc in rerun] == labels

    def test_follow_parallel_fails_on_bogus_labels(self, example2_graph):
        from repro.core.atoms import mandatory

        assert follow_parallel(example2_graph, mandatory(A, T), ["rho99"]) is None


class TestGeneralize:
    def test_constants_kept_variables_replaced(self):
        pattern, mapping = generalize_conjuncts((data(c1, A, Null(1)),))
        atom = pattern[0]
        assert atom.args[0] == c1
        assert atom.args[1].is_variable and atom.args[2].is_variable
        assert mapping[A] == atom.args[1]

    def test_shared_terms_shared_pattern_vars(self):
        pattern, _ = generalize_conjuncts(
            (data(T, A, Null(1)), member(Null(1), T))
        )
        assert pattern[0].args[2] == pattern[1].args[0]
        assert pattern[0].args[0] == pattern[1].args[1]


class TestBoundedImages:
    def test_lemma9_deep_conjunct_folds(self, example2_chased, example2_query):
        inst = example2_chased.instance
        delta = 2 * example2_query.size
        deep = [a for a in inst if inst.level_of(a) > delta]
        assert deep, "chase should be deeper than delta"
        for atom in deep:
            image = bounded_image(inst, atom, delta)
            assert image is not None
            assert inst.level_of(image) <= delta
            assert equivalent(atom, image)

    def test_lemma11_pair_folds_jointly(self, example2_chased, example2_query):
        inst = example2_chased.instance
        delta = 2 * example2_query.size
        deep = sorted(
            (a for a in inst if inst.level_of(a) > delta),
            key=lambda a: inst.level_of(a),
        )
        pair = deep[:2]
        found = bounded_image_of_set(inst, pair, 2 * delta)
        assert found is not None
        _, images = found
        for image in images:
            assert inst.level_of(image) <= 2 * delta

    def test_bounded_image_none_when_bound_too_small(self, example2_chased):
        inst = example2_chased.instance
        v3 = Null(3)
        deep_atom = Atom("data", (v3, A, Null(4)))
        if deep_atom in inst:
            # Level bound 0 has no data conjunct at all in example 2.
            assert bounded_image(inst, deep_atom, 0) is None
