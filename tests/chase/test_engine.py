"""Unit tests for the chase engine: both phases, EGDs, budgets, ablations."""

import pytest

from repro.chase.engine import ChaseConfig, ChaseEngine, chase
from repro.core.atoms import data, funct, mandatory, member, sub, type_
from repro.core.errors import ChaseBudgetExceeded
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.dependencies import SIGMA_FL, SIGMA_FL_MINUS

A, T, U, O, C, V1, V2, W = (
    Variable("A"),
    Variable("T"),
    Variable("U"),
    Variable("O"),
    Variable("C"),
    Variable("V1"),
    Variable("V2"),
    Variable("W"),
)


class TestLevelZero:
    def test_subclass_transitivity_saturates_at_level_zero(self):
        q = ConjunctiveQuery(
            "q", (), (sub(Variable("C1"), Variable("C2")), sub(Variable("C2"), Variable("C3")))
        )
        result = chase(q)
        assert result.saturated
        derived = sub(Variable("C1"), Variable("C3"))
        assert derived in result.atoms()
        assert result.instance.level_of(derived) == 0

    def test_membership_propagation(self):
        q = ConjunctiveQuery("q", (), (member(O, C), sub(C, Variable("D"))))
        result = chase(q)
        assert member(O, Variable("D")) in result.atoms()

    def test_type_inheritance_chain(self):
        q = ConjunctiveQuery(
            "q", (), (member(O, C), sub(C, Variable("D")), type_(Variable("D"), A, T))
        )
        result = chase(q)
        atoms = result.atoms()
        assert type_(C, A, T) in atoms      # rho7
        assert type_(O, A, T) in atoms      # rho6 via rho7 or directly
        assert result.instance.level_of(type_(O, A, T)) == 0

    def test_no_applicable_rules_keeps_body(self):
        q = ConjunctiveQuery("q", (), (data(O, A, V1),))
        result = chase(q)
        assert result.atoms() == frozenset({data(O, A, V1)})
        assert result.saturated

    def test_rule_application_counters(self):
        q = ConjunctiveQuery("q", (), (member(O, C), sub(C, Variable("D"))))
        result = chase(q)
        assert result.rule_applications.get("rho3") == 1


class TestEGD:
    def test_functional_merges_values(self):
        q = ConjunctiveQuery(
            "q",
            (),
            (data(O, A, V1), data(O, A, V2), funct(A, O)),
        )
        result = chase(q)
        assert not result.failed
        assert len([a for a in result.atoms() if a.predicate == "data"]) == 1

    def test_functional_constant_clash_fails_chase(self):
        q = ConjunctiveQuery(
            "q",
            (),
            (
                data(O, A, Constant("red")),
                data(O, A, Constant("blue")),
                funct(A, O),
            ),
        )
        result = chase(q)
        assert result.failed
        assert result.instance is None
        assert result.atoms() == frozenset()

    def test_egd_through_inheritance(self):
        """funct on the class reaches the member via rho12 before merging."""
        q = ConjunctiveQuery(
            "q",
            (),
            (
                data(O, A, V1),
                data(O, A, Constant("k")),
                funct(A, C),
                member(O, C),
            ),
        )
        result = chase(q)
        assert not result.failed
        assert data(O, A, Constant("k")) in result.atoms()
        assert data(O, A, V1) not in result.atoms()

    def test_merge_cascade(self):
        """Merging V1=V2 can enable a second merge."""
        B = Variable("B")
        q = ConjunctiveQuery(
            "q",
            (),
            (
                data(O, A, V1),
                data(O, A, V2),
                funct(A, O),
                data(V1, B, W),
                data(V2, B, Variable("W2")),
                funct(B, V1),
            ),
        )
        result = chase(q)
        assert not result.failed
        # After V2 -> V1, the two data(V1,B,...) atoms merge W2 -> W.
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert len(data_atoms) == 2


class TestExistentialPhase:
    def test_rho5_invents_null(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, O),))
        result = chase(q)
        assert result.saturated
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert len(data_atoms) == 1
        assert data_atoms[0].args[2].is_null
        assert result.instance.level_of(data_atoms[0]) == 1

    def test_restricted_blocks_when_satisfied(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, O), data(O, A, W)))
        result = chase(q)
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert len(data_atoms) == 1  # no invention

    def test_oblivious_invents_anyway(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, O), data(O, A, W)))
        result = chase(q, restricted=False)
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert len(data_atoms) == 2

    def test_level_bound_truncates_cyclic_chase(self):
        q = ConjunctiveQuery(
            "q", (), (mandatory(A, T), type_(T, A, T))
        )
        result = chase(q, max_level=6)
        assert not result.failed
        assert not result.saturated
        assert result.level_reached <= 6

    def test_unbounded_cyclic_chase_hits_step_budget(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, T), type_(T, A, T)))
        with pytest.raises(ChaseBudgetExceeded):
            chase(q, max_steps=50)

    def test_distinct_nulls_for_distinct_triggers(self):
        q = ConjunctiveQuery(
            "q", (), (mandatory(A, O), mandatory(A, C), sub(O, C))
        )
        result = chase(q)
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        nulls = {a.args[2] for a in data_atoms}
        assert len(nulls) == len(data_atoms) >= 2

    def test_level_increments_along_chain(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, T), type_(T, A, T)))
        result = chase(q, max_level=7)
        inst = result.instance
        levels = {}
        for atom in inst:
            levels.setdefault(atom.predicate, []).append(inst.level_of(atom))
        assert min(levels["data"]) == 1
        assert min(lvl for lvl in levels["member"] if lvl > 0) == 2


class TestGenericDependencies:
    def test_sigma_minus_never_invents(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, O),))
        result = chase(q, dependencies=SIGMA_FL_MINUS)
        assert result.saturated
        assert all(a.predicate != "data" for a in result.atoms())

    def test_custom_dependency_set(self):
        from repro.dependencies import TGD

        X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")
        # p(X,Y) -> exists Z p(Y,Z): the classic infinite chase.
        from repro.core.atoms import Atom

        p = lambda s, t: Atom("p", (s, t))
        dep = TGD(p(Y, Z), (p(X, Y),), label="succ")
        q = ConjunctiveQuery("q", (), (p(Variable("A0"), Variable("B0")),))
        result = chase(q, dependencies=(dep,), max_level=5)
        assert not result.saturated
        assert result.size() == 6  # initial + 5 invented hops


class TestResultObject:
    def test_head_preserved_without_egd(self):
        q = ConjunctiveQuery("q", (O,), (member(O, C),))
        result = chase(q)
        assert result.head == (O,)

    def test_repr_mentions_status(self):
        q = ConjunctiveQuery("q", (), (member(O, C),))
        assert "saturated" in repr(chase(q))

    def test_elapsed_recorded(self):
        q = ConjunctiveQuery("q", (), (member(O, C),))
        assert chase(q).elapsed_seconds >= 0

    def test_engine_reuse(self):
        engine = ChaseEngine(SIGMA_FL, ChaseConfig(max_level=4))
        q1 = ConjunctiveQuery("q1", (), (member(O, C),))
        q2 = ConjunctiveQuery("q2", (), (mandatory(A, O),))
        r1, r2 = engine.run(q1), engine.run(q2)
        assert r1.saturated and r2.saturated
