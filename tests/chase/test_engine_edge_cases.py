"""Chase engine edge cases: budgets, merges across phases, head handling."""

import pytest

from repro.chase.engine import ChaseConfig, ChaseEngine, chase
from repro.core.atoms import Atom, data, funct, mandatory, member, sub, type_
from repro.core.errors import ChaseBudgetExceeded
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Null, Variable

A, B, T, U, O, C, V, W = (Variable(n) for n in "A B T U O C V W".split())


class TestBudgets:
    def test_phase1_budget_respected(self):
        # Large subclass clique: quadratic closure, tiny budget.
        atoms = [
            sub(Variable(f"S{i}"), Variable(f"S{i+1}")) for i in range(20)
        ]
        q = ConjunctiveQuery("q", (), tuple(atoms))
        with pytest.raises(ChaseBudgetExceeded):
            chase(q, max_steps=10)

    def test_zero_level_bound_keeps_level0_only(self):
        q = ConjunctiveQuery("q", (), (mandatory(A, O), member(O, C)))
        result = chase(q, max_level=0)
        assert result.level_reached == 0
        assert not result.saturated  # rho5 was suppressed
        assert all(a.predicate != "data" for a in result.atoms())

    def test_level0_rules_unbounded_by_max_level(self):
        """Section 4: Sigma^- saturation is all level 0, even at bound 0."""
        q = ConjunctiveQuery(
            "q", (), (sub(T, U), sub(U, Variable("U2")), member(O, T))
        )
        result = chase(q, max_level=0)
        assert sub(T, Variable("U2")) in result.atoms()
        assert member(O, Variable("U2")) in result.atoms()
        assert result.saturated


class TestMergeInteractions:
    def test_merge_of_null_into_constant(self):
        """rho5 invents a value, then the EGD merges it with a constant."""
        k = Constant("k")
        q = ConjunctiveQuery(
            "q",
            (),
            (
                mandatory(A, O),
                funct(A, O),
                data(O, A, k),
            ),
        )
        result = chase(q)
        # Restricted rho5 never fires (data exists), so only the constant.
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert data_atoms == [data(O, A, k)]

    def test_oblivious_invention_merged_back_by_egd(self):
        k = Constant("k")
        q = ConjunctiveQuery(
            "q",
            (),
            (mandatory(A, O), funct(A, O), data(O, A, k)),
        )
        result = chase(q, restricted=False)
        assert not result.failed
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        # The invented null merged into k: one data conjunct remains.
        assert data_atoms == [data(O, A, k)]

    def test_merge_cascade_across_levels(self):
        """A null invented at level 1 is merged with a body variable."""
        q = ConjunctiveQuery(
            "q",
            (V,),
            (mandatory(A, O), funct(A, O), data(O, A, V)),
        )
        result = chase(q, restricted=False)
        assert not result.failed
        # V survives the merge (variables lose to nulls? no: nulls < vars
        # lexicographically, so the null wins).  Head must follow.
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert len(data_atoms) == 1
        survivor = data_atoms[0].args[2]
        assert result.head == (survivor,)

    def test_head_constant_untouched(self):
        q = ConjunctiveQuery("q", (Constant("k"),), (member(O, C),))
        result = chase(q)
        assert result.head == (Constant("k"),)


class TestConfig:
    def test_engine_is_reusable_across_queries(self):
        engine = ChaseEngine(config=ChaseConfig(max_level=2))
        q1 = ConjunctiveQuery("q1", (), (mandatory(A, O),))
        q2 = ConjunctiveQuery("q2", (), (mandatory(B, C),))
        r1 = engine.run(q1)
        r2 = engine.run(q2)
        # Null indices restart per run: both runs invent _v1.
        nulls1 = {n for a in r1.atoms() for n in a.nulls()}
        nulls2 = {n for a in r2.atoms() for n in a.nulls()}
        assert nulls1 == nulls2 == {Null(1)}

    def test_config_is_frozen(self):
        config = ChaseConfig()
        with pytest.raises(Exception):
            config.max_level = 5  # type: ignore[misc]

    def test_no_reorder_same_chase_modulo_levels(self):
        q = ConjunctiveQuery(
            "q", (), (mandatory(A, T), type_(T, A, T))
        )
        fast = chase(q, max_level=6, reorder_join=True)
        slow = chase(q, max_level=6, reorder_join=False)
        assert fast.atoms() == slow.atoms()
