"""The paper's Examples 1 and 2, asserted in detail."""

from repro.chase.engine import chase
from repro.core.atoms import Atom, data, funct, mandatory, member, type_
from repro.core.terms import Null, Variable

A, T, U, O, C = (Variable(n) for n in "A T U O C".split())
V1, V2 = Variable("V1"), Variable("V2")


class TestExample1:
    """q(V1,V2) :- data(O,A,V1), data(O,A,V2), funct(A,C), member(O,C)."""

    def test_head_becomes_diagonal(self, example1_query):
        result = chase(example1_query)
        assert result.head == (V1, V1)

    def test_funct_propagated_by_rho12(self, example1_query):
        result = chase(example1_query)
        assert funct(A, O) in result.atoms()
        assert result.instance.rule_of(funct(A, O)) == "rho12"

    def test_data_atoms_collapse(self, example1_query):
        result = chase(example1_query)
        data_atoms = [a for a in result.atoms() if a.predicate == "data"]
        assert data_atoms == [data(O, A, V1)]

    def test_v2_eliminated_everywhere(self, example1_query):
        result = chase(example1_query)
        for atom in result.atoms():
            assert V2 not in atom.args

    def test_chase_saturates_and_stays_level_zero(self, example1_query):
        result = chase(example1_query)
        assert result.saturated
        assert result.level_reached == 0

    def test_exact_final_conjunct_set(self, example1_query):
        """The chased body the paper prints (modulo the duplicate data atom)."""
        result = chase(example1_query)
        assert result.atoms() == frozenset(
            {data(O, A, V1), funct(A, O), funct(A, C), member(O, C)}
        )


class TestExample2:
    """q() :- mandatory(A,T), type(T,A,T), sub(T,U) — the Figure-1 chase."""

    def test_chase_does_not_saturate(self, example2_query):
        result = chase(example2_query, max_level=10)
        assert not result.saturated and not result.failed

    def test_level0_contains_rho8_supertype(self, example2_query):
        result = chase(example2_query, max_level=4)
        assert type_(T, A, U) in result.atoms()
        assert result.instance.level_of(type_(T, A, U)) == 0

    def test_figure1_chain_first_cycle(self, example2_query):
        result = chase(example2_query, max_level=6)
        inst = result.instance
        v1 = Null(1)
        chain = {
            data(T, A, v1): ("rho5", 1),
            Atom("member", (v1, T)): ("rho1", 2),
            Atom("type", (v1, A, T)): ("rho6", 3),
            Atom("mandatory", (A, v1)): ("rho10", 3),
        }
        for atom, (rule, level) in chain.items():
            assert atom in inst.atoms(), f"missing {atom}"
            assert inst.rule_of(atom) == rule
            assert inst.level_of(atom) == level

    def test_figure1_branch_member_v1_U(self, example2_query):
        """The branch the paper attributes to rho_3 (we may reach it via
        rho_1 on type(T,A,U) first; either way it must exist)."""
        result = chase(example2_query, max_level=6)
        v1 = Null(1)
        assert Atom("member", (v1, U)) in result.atoms()

    def test_second_cycle_repeats_pattern(self, example2_query):
        result = chase(example2_query, max_level=9)
        v1, v2 = Null(1), Null(2)
        assert Atom("data", (v1, A, v2)) in result.atoms()
        assert Atom("member", (v2, T)) in result.atoms()
        assert Atom("type", (v2, A, T)) in result.atoms()

    def test_nulls_never_merged(self, example2_query):
        """The chain's nulls are distinct: no funct is present to merge them."""
        result = chase(example2_query, max_level=9)
        nulls = set()
        for atom in result.atoms():
            nulls |= atom.nulls()
        assert len(nulls) >= 3

    def test_growth_is_periodic(self, example2_query):
        sizes = [chase(example2_query, max_level=k).size() for k in (6, 9, 12)]
        assert sizes[1] - sizes[0] == sizes[2] - sizes[1]
