"""Unit tests for the chase graph (Definition 3)."""

import pytest

from repro.chase.engine import chase
from repro.chase.graph import ChaseGraph
from repro.core.atoms import Atom, data, mandatory, member, sub, type_
from repro.core.errors import ReproError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Null, Variable

A, T, U, O, C = (Variable(n) for n in "A T U O C".split())


@pytest.fixture
def example2_graph(example2_query):
    result = chase(example2_query, max_level=8, track_graph=True)
    return ChaseGraph.from_result(result)


class TestConstruction:
    def test_from_result_requires_tracking(self, example2_query):
        result = chase(example2_query, max_level=6, track_graph=False)
        with pytest.raises(ReproError):
            ChaseGraph.from_result(result)

    def test_from_failed_chase_raises(self):
        from repro.core.atoms import funct
        from repro.core.terms import Constant

        q = ConjunctiveQuery(
            "q",
            (),
            (
                data(O, A, Constant("x")),
                data(O, A, Constant("y")),
                funct(A, O),
            ),
        )
        result = chase(q, track_graph=True)
        assert result.failed
        with pytest.raises(ReproError):
            ChaseGraph.from_result(result)

    def test_nodes_are_conjuncts(self, example2_graph, example2_query):
        for atom in example2_query.body:
            assert atom in example2_graph

    def test_saturated_untracked_body_only_graph_allowed(self):
        q = ConjunctiveQuery("q", (), (data(O, A, Variable("V")),))
        result = chase(q, track_graph=False)
        graph = ChaseGraph.from_result(result)  # nothing derived: fine
        assert len(graph) == 1


class TestArcs:
    def test_primary_arcs_span_one_level(self, example2_graph):
        for arc in example2_graph.primary_arcs():
            assert arc.target_level == arc.source_level + 1

    def test_secondary_arcs_do_not(self, example2_graph):
        for arc in example2_graph.secondary_arcs():
            assert arc.target_level != arc.source_level + 1

    def test_rho5_arc_from_mandatory_to_data(self, example2_graph):
        v1 = Null(1)
        arcs = example2_graph.arcs_into(data(T, A, v1))
        assert any(arc.rule == "rho5" and arc.source == mandatory(A, T) for arc in arcs)

    def test_parents_excludes_cross_arcs(self, example2_graph):
        v1 = Null(1)
        parents = example2_graph.parents(Atom("member", (v1, T)))
        assert data(T, A, v1) in parents

    def test_primary_parent(self, example2_graph):
        v1 = Null(1)
        parent = example2_graph.primary_parent(Atom("member", (v1, T)))
        assert parent == data(T, A, v1)

    def test_arcs_out_of(self, example2_graph):
        outgoing = example2_graph.arcs_out_of(mandatory(A, T))
        assert any(arc.rule == "rho5" for arc in outgoing)

    def test_no_duplicate_arcs(self, example2_graph):
        seen = set()
        for arc in example2_graph.arcs():
            key = (arc.source, arc.target, arc.rule, arc.cross)
            assert key not in seen
            seen.add(key)


class TestLevels:
    def test_levels_match_instance(self, example2_query):
        result = chase(example2_query, max_level=6, track_graph=True)
        graph = ChaseGraph.from_result(result)
        for atom in graph.nodes():
            assert graph.level(atom) == result.instance.level_of(atom)

    def test_nodes_at_level_partition(self, example2_graph):
        total = sum(
            len(example2_graph.nodes_at_level(lvl))
            for lvl in range(example2_graph.max_level() + 1)
        )
        assert total == len(example2_graph)

    def test_rule_labels(self, example2_graph):
        assert example2_graph.rule(mandatory(A, T)) == "initial"


class TestExport:
    def test_to_networkx(self, example2_graph):
        nx_graph = example2_graph.to_networkx()
        assert nx_graph.number_of_nodes() == len(example2_graph)
        assert nx_graph.number_of_edges() == len(example2_graph.arcs())
        # Node attributes preserved.
        some_node = str(mandatory(A, T))
        assert nx_graph.nodes[some_node]["level"] == 0

    def test_pretty_table_mentions_levels(self, example2_graph):
        text = example2_graph.pretty_table(max_level=3)
        assert "level 0:" in text and "level 3:" in text

    def test_repr(self, example2_graph):
        assert "nodes" in repr(example2_graph)
