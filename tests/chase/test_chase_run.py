"""Unit tests for resumable chase sessions (ChaseRun)."""

import pytest

from repro.chase.engine import ChaseConfig, ChaseEngine, chase
from repro.core.atoms import data, funct, member, sub
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Constant, Variable
from repro.dependencies.sigma_fl import SIGMA_FL
from repro.workloads.corpus import EXAMPLE2_QUERY, INTRO_JOINABLE_Q

O, A, X, Y = (Variable(n) for n in "O A X Y".split())

FAILING_QUERY = ConjunctiveQuery(
    "q_clash",
    (),
    (
        data(O, A, Constant("red")),
        data(O, A, Constant("blue")),
        funct(A, O),
    ),
)


def make_engine(**config):
    return ChaseEngine(SIGMA_FL, ChaseConfig(**config)) if config else ChaseEngine(SIGMA_FL)


class TestExtendTo:
    def test_incremental_matches_fresh_size(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(3)
        run.extend_to(6)
        run.extend_to(12)
        fresh = chase(EXAMPLE2_QUERY, max_level=12)
        incremental = run.result()
        assert incremental.size() == fresh.size()
        assert incremental.instance.max_level() == fresh.instance.max_level()

    def test_extension_counter_counts_growing_calls_only(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(3)
        assert run.extensions == 0  # the first build is not an extension
        run.extend_to(6)
        assert run.extensions == 1
        run.extend_to(6)  # covered: no work, no counter bump
        assert run.extensions == 1
        run.extend_to(2)  # smaller bound is already covered
        assert run.extensions == 1

    def test_covers(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        assert not run.covers(0)
        run.extend_to(4)
        assert run.covers(4) and run.covers(0)
        assert not run.covers(5)
        assert not run.covers(None)  # None means "unbounded"

    def test_saturated_run_covers_everything(self):
        run = make_engine().start(INTRO_JOINABLE_Q)
        run.extend_to(5)
        assert run.saturated
        assert run.covers(10_000) and run.covers(None)
        assert not run.pending_triggers

    def test_cyclic_run_keeps_pending_triggers(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(4)
        assert not run.saturated
        assert run.pending_triggers > 0

    def test_result_snapshot_identity(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(4)
        first = run.result()
        assert run.result() is first  # cached while the run is unchanged
        size_at_4 = first.size()
        run.extend_to(8)
        second = run.result()
        assert second is not first
        assert second.size() > size_at_4

    def test_result_reports_extensions(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(2)
        run.extend_to(4)
        assert run.result().extensions == 1

    def test_failed_chase(self):
        run = make_engine().start(FAILING_QUERY)
        run.extend_to(3)
        assert run.failed
        assert run.covers(10_000)  # failure is terminal: nothing to extend
        result = run.result()
        assert result.failed and result.instance is None

    def test_run_matches_engine_run(self):
        engine = make_engine(max_level=6)
        via_run = engine.run(EXAMPLE2_QUERY)
        session = engine.start(EXAMPLE2_QUERY)
        session.extend_to(6)
        assert via_run.size() == session.result().size()

    def test_elapsed_accumulates(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(2)
        t1 = run.elapsed_seconds
        run.extend_to(6)
        assert run.elapsed_seconds > t1 > 0.0


class TestSegmentTiming:
    """elapsed_seconds must be the sum of disjoint per-segment windows —
    a resumed run never re-counts time attributed to an earlier segment."""

    @pytest.fixture
    def fake_clock(self, monkeypatch):
        from repro.chase import engine as engine_mod

        ticks = {"now": 0.0}

        def perf_counter():
            ticks["now"] += 1.0
            return ticks["now"]

        monkeypatch.setattr(engine_mod.time, "perf_counter", perf_counter)
        return ticks

    def test_segments_are_disjoint_windows(self, fake_clock):
        # With the no-op tracer, each extend_to reads the clock exactly
        # twice (segment start + end), so each segment is exactly 1.0
        # fake seconds — regardless of how much prior time accumulated.
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(2)
        assert run.segment_seconds == [1.0]
        assert run.elapsed_seconds == 1.0
        run.extend_to(6)
        run.extend_to(10)
        # A double-counting bug would make later segments include the
        # earlier windows (2.0, 3.0, ...) and elapsed grow quadratically.
        assert run.segment_seconds == [1.0, 1.0, 1.0]
        assert run.elapsed_seconds == sum(run.segment_seconds) == 3.0

    def test_covered_extend_adds_no_segment(self, fake_clock):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(4)
        run.extend_to(4)
        run.extend_to(2)
        assert run.segment_seconds == [1.0]

    def test_result_snapshot_exposes_segments(self, fake_clock):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(2)
        run.extend_to(6)
        result = run.result()
        assert result.segment_seconds == (1.0, 1.0)
        assert result.elapsed_seconds == sum(result.segment_seconds)

    def test_failed_run_still_records_its_segment(self, fake_clock):
        run = make_engine().start(FAILING_QUERY)
        run.extend_to(4)
        assert run.failed
        assert run.segment_seconds == [1.0]
        assert run.result().segment_seconds == (1.0,)

    def test_real_clock_invariant(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(2)
        run.extend_to(6)
        run.extend_to(12)
        assert run.elapsed_seconds == pytest.approx(sum(run.segment_seconds))
        assert len(run.segment_seconds) == 3
        assert all(s >= 0.0 for s in run.segment_seconds)


class TestLevelPrefixView:
    def test_view_matches_manual_level_filter(self):
        """The view is exactly the level-filtered atom set of its own
        instance.  (It need not equal a *fresh* chase at the lower bound:
        EGD merges triggered by deeper levels may collapse two shallow
        atoms into one, so the deeper run's prefix can be smaller.)"""
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(8)
        instance = run.result().instance
        view = instance.up_to_level(3)
        expected = {a for a in instance.index if instance.level_of(a) <= 3}
        assert set(view) == expected
        assert len(view) == len(expected)
        assert view.to_frozenset() == frozenset(expected)

    def test_view_is_zero_copy_window(self):
        run = make_engine().start(EXAMPLE2_QUERY)
        run.extend_to(6)
        instance = run.result().instance
        view = instance.up_to_level(2)
        assert all(instance.level_of(atom) <= 2 for atom in view)
        assert len(view) < len(instance.index)
