"""Unit tests for the chase instance: provenance, levels, EGD merges."""

import pytest

from repro.chase.instance import INITIAL_RULE_LABEL, ChaseInstance
from repro.core.atoms import Atom, data, funct, member
from repro.core.errors import ChaseFailure
from repro.core.terms import Constant, Null, Variable

X, Y = Variable("X"), Variable("Y")
V1, V2 = Variable("V1"), Variable("V2")
a, b = Constant("a"), Constant("b")


def fresh_instance(atoms=(), head=()):
    return ChaseInstance(atoms, head, track_graph=True)


class TestAdd:
    def test_initial_atoms_are_level_zero(self):
        inst = fresh_instance([member(X, Y)])
        assert inst.level_of(member(X, Y)) == 0
        assert inst.rule_of(member(X, Y)) == INITIAL_RULE_LABEL

    def test_add_with_provenance(self):
        inst = fresh_instance([member(X, Y)])
        parent = inst.node_id(member(X, Y))
        node = inst.add(data(X, Y, V1), level=1, rule="rho5", parents=(parent,))
        assert node is not None
        assert inst.level_of(data(X, Y, V1)) == 1
        assert inst.rule_of(data(X, Y, V1)) == "rho5"

    def test_add_duplicate_returns_none(self):
        inst = fresh_instance([member(X, Y)])
        assert inst.add(member(X, Y), level=1, rule="rho3", parents=()) is None
        assert inst.level_of(member(X, Y)) == 0  # original metadata kept

    def test_duplicate_with_cross_flag_records_cross_arc(self):
        inst = fresh_instance([member(X, Y)])
        inst.add(
            member(X, Y), level=1, rule="rho3", parents=(), cross_if_present=True
        )
        crosses = [arc for arc in inst.arcs() if arc.cross]
        assert len(crosses) == 1 and crosses[0].rule == "rho3"

    def test_arcs_recorded_for_generated(self):
        inst = fresh_instance([member(X, Y)])
        parent = inst.node_id(member(X, Y))
        inst.add(data(X, Y, V1), level=1, rule="rho5", parents=(parent,))
        arcs = [arc for arc in inst.arcs() if not arc.cross]
        assert len(arcs) == 1
        assert arcs[0].parent_ids == (parent,)

    def test_membership_and_len(self):
        inst = fresh_instance([member(X, Y)])
        assert member(X, Y) in inst
        assert len(inst) == 1

    def test_atoms_up_to_level(self):
        inst = fresh_instance([member(X, Y)])
        inst.add(data(X, Y, V1), level=3, rule="rho5", parents=(1,))
        assert inst.atoms_up_to_level(0) == [member(X, Y)]
        assert set(inst.atoms_up_to_level(3)) == {member(X, Y), data(X, Y, V1)}


class TestMerge:
    def test_variable_merges_into_constant(self):
        inst = fresh_instance([data(X, Y, V1), data(X, Y, a)])
        inst.merge(V1, a)
        assert data(X, Y, a) in inst
        assert data(X, Y, V1) not in inst

    def test_lexicographic_preference_null_over_variable(self):
        n = Null(1)
        inst = fresh_instance([Atom("data", (X, Y, n)), data(X, Y, V1)])
        inst.merge(n, V1)
        assert Atom("data", (X, Y, n)) in inst
        assert data(X, Y, V1) not in inst

    def test_variable_merge_alphabetical(self):
        inst = fresh_instance([data(X, Y, V1), data(X, Y, V2)])
        inst.merge(V2, V1)
        assert data(X, Y, V1) in inst  # V1 < V2

    def test_constant_clash_fails(self):
        inst = fresh_instance([data(X, Y, a), data(X, Y, b)])
        with pytest.raises(ChaseFailure):
            inst.merge(a, b)

    def test_merge_same_term_noop(self):
        inst = fresh_instance([data(X, Y, V1)])
        assert inst.merge(V1, V1) is False

    def test_head_rewritten(self):
        inst = ChaseInstance([data(X, Y, V1), data(X, Y, V2)], head=(V1, V2))
        inst.merge(V1, V2)
        assert inst.head == (V1, V1)

    def test_collapsed_conjuncts_keep_min_level(self):
        inst = fresh_instance([data(X, Y, V1)])
        inst.add(data(X, Y, V2), level=5, rule="rho5", parents=(1,))
        inst.merge(V1, V2)
        assert inst.level_of(data(X, Y, V1)) == 0

    def test_resolve_term_follows_chain(self):
        inst = fresh_instance([data(X, Y, V1), data(X, Y, V2), data(X, Y, a)])
        inst.merge(V1, V2)   # V2 -> V1
        inst.merge(V1, a)    # V1 -> a
        assert inst.resolve_term(V2) == a

    def test_dirty_tracks_rewritten_atoms(self):
        inst = fresh_instance([data(X, Y, V1), member(V1, V2)])
        inst.drain_dirty()
        inst.merge(V1, a)
        dirty = set(inst.drain_dirty())
        assert data(X, Y, a) in dirty
        assert member(a, V2) in dirty

    def test_drain_dirty_resets(self):
        inst = fresh_instance([data(X, Y, V1)])
        inst.merge(V1, a)
        inst.drain_dirty()
        assert inst.drain_dirty() == []

    def test_node_identity_survives_rewrite(self):
        inst = fresh_instance([data(X, Y, V1)])
        node = inst.node_id(data(X, Y, V1))
        inst.merge(V1, a)
        assert inst.atom_of(node) == data(X, Y, a)
        assert inst.node_id(data(X, Y, a)) == node

    def test_merge_term_in_multiple_positions(self):
        inst = fresh_instance([Atom("data", (V1, V1, V1))])
        inst.merge(V1, a)
        assert Atom("data", (a, a, a)) in inst


class TestDisplay:
    def test_pretty_contains_levels_and_rules(self):
        inst = fresh_instance([member(X, Y)])
        text = inst.pretty()
        assert "L0" in text and INITIAL_RULE_LABEL in text

    def test_repr(self):
        inst = fresh_instance([member(X, Y)])
        assert "1 conjuncts" in repr(inst)
