"""Unit tests for derivation trees (chase provenance)."""

import pytest

from repro.chase import Derivation, chase
from repro.core.atoms import member, sub, type_, data
from repro.core.errors import ReproError
from repro.core.query import ConjunctiveQuery
from repro.core.terms import Variable
from repro.flogic import KnowledgeBase

O, C, D, E, A, T = (Variable(n) for n in "O C D E A T".split())


class TestInstanceDerivations:
    def test_initial_conjunct_is_leaf(self):
        q = ConjunctiveQuery("q", (), (member(O, C),))
        result = chase(q)
        derivation = result.instance.derivation_of(member(O, C))
        assert derivation.rule == "initial"
        assert derivation.premises == ()
        assert derivation.depth() == 0

    def test_one_step_derivation(self):
        q = ConjunctiveQuery("q", (), (member(O, C), sub(C, D)))
        result = chase(q)
        derivation = result.instance.derivation_of(member(O, D))
        assert derivation.rule == "rho3"
        premise_atoms = {p.atom for p in derivation.premises}
        assert premise_atoms == {member(O, C), sub(C, D)}
        assert derivation.depth() == 1

    def test_nested_derivation(self):
        q = ConjunctiveQuery(
            "q", (), (member(O, C), sub(C, D), sub(D, E))
        )
        result = chase(q)
        derivation = result.instance.derivation_of(member(O, E))
        assert derivation.depth() >= 2
        leaves = _leaves(derivation)
        assert leaves <= set(q.body)

    def test_pretty_output(self):
        q = ConjunctiveQuery("q", (), (member(O, C), sub(C, D)))
        result = chase(q)
        text = result.instance.derivation_of(member(O, D)).pretty()
        assert "[rho3] from:" in text and "[initial]" in text

    def test_derivation_through_invented_value(self):
        from repro.core.atoms import mandatory

        q = ConjunctiveQuery("q", (), (mandatory(A, O),))
        result = chase(q)
        data_atom = next(a for a in result.atoms() if a.predicate == "data")
        derivation = result.instance.derivation_of(data_atom)
        assert derivation.rule == "rho5"
        assert derivation.premises[0].atom == mandatory(A, O)


def _leaves(derivation: Derivation) -> set:
    if not derivation.premises:
        return {derivation.atom}
    out = set()
    for premise in derivation.premises:
        out |= _leaves(premise)
    return out


class TestKBExplain:
    @pytest.fixture
    def kb(self):
        return KnowledgeBase().load(
            """
            freshman::student. student::person.
            john:freshman.
            person[age*=>number].
            john[age->33].
            """
        )

    def test_explain_base_fact(self, kb):
        derivation = kb.explain("john:freshman.")
        assert derivation.rule == "initial"

    def test_explain_derived_membership(self, kb):
        derivation = kb.explain("john:person.")
        assert derivation.rule == "rho3"
        leaves = _leaves(derivation)
        assert all(leaf in set(kb.base_facts) for leaf in leaves)

    def test_explain_type_correctness_chain(self, kb):
        derivation = kb.explain("33:number.")
        assert derivation.rule == "rho1"
        assert derivation.depth() >= 2

    def test_explain_atom_object(self, kb):
        from repro.core.terms import Constant

        derivation = kb.explain(member(Constant("john"), Constant("student")))
        assert derivation.rule == "rho3"

    def test_unentailed_fact_raises(self, kb):
        with pytest.raises(ReproError):
            kb.explain("john:robot.")

    def test_non_fact_input_raises(self, kb):
        with pytest.raises(ReproError):
            kb.explain("q(X) :- X:person.")
